//! SNR → packet-error-rate model.
//!
//! Each MCS has a threshold SNR (see [`crate::mcs::snr_requirement_db`]);
//! around that threshold the PER follows a logistic ("waterfall") curve,
//! which is the standard abstraction of coded-OFDM link behaviour: a few
//! dB above threshold the link is clean, a few dB below it is unusable.
//! PER also scales with frame length (more bits, more chances to break).

use crate::channels::Width;
use crate::mcs::{snr_requirement_db, Mcs};
use std::collections::BTreeMap;

/// Steepness of the PER waterfall, per dB. 1.0–2.0 matches measured
/// 802.11 receiver curves; we use 1.5.
const WATERFALL_SLOPE: f64 = 1.5;

/// Reference frame length for the threshold tables (bytes).
const REF_FRAME_BYTES: f64 = 1024.0;

/// Waterfall argument beyond which the logistic saturates *exactly* in
/// f64 arithmetic, not just approximately: for x ≥ 41, `1 + exp(x)`
/// rounds to `exp(x)`, so `per_ref = 1/exp(x) ≤ exp(-41) < 2⁻⁵⁴` and
/// `1 − per_ref` rounds to exactly 1.0 — the full computation returns
/// exactly 0.0 (and symmetrically exactly 1.0 at x ≤ −41). The
/// early-outs below therefore change no result by even one ULP; a unit
/// test pins the equivalence on both sides of the cutoff.
const SATURATION_ARG: f64 = 41.0;

/// Probability that a single MPDU of `frame_bytes` is corrupted when
/// received at `snr_db` with the given MCS/width.
///
/// At `snr == threshold` the PER is 50% for a 1024-byte frame; +4 dB is
/// effectively clean (<0.3%), −4 dB effectively dead (>99%).
pub fn mpdu_error_rate(snr_db: f64, mcs: Mcs, width: Width, frame_bytes: usize) -> f64 {
    let threshold = snr_requirement_db(mcs, width);
    let margin = snr_db - threshold;
    let x = WATERFALL_SLOPE * margin;
    // Exact saturation shortcuts: skip the exp/powf pair for links far
    // from the waterfall (most of a healthy network). See SATURATION_ARG
    // for why these are bit-identical to the slow path.
    if x >= SATURATION_ARG {
        return 0.0;
    }
    if x <= -SATURATION_ARG {
        return 1.0;
    }
    let per_ref = 1.0 / (1.0 + x.exp());
    // Convert to per-bit success and re-scale to the actual length:
    // s_len = s_ref^(len/ref).
    let success_ref = 1.0 - per_ref;
    if success_ref <= 0.0 {
        return 1.0;
    }
    let scale = frame_bytes as f64 / REF_FRAME_BYTES;
    1.0 - success_ref.powf(scale.max(1e-3))
}

/// Probability that an MPDU survives.
pub fn mpdu_success_rate(snr_db: f64, mcs: Mcs, width: Width, frame_bytes: usize) -> f64 {
    1.0 - mpdu_error_rate(snr_db, mcs, width, frame_bytes)
}

/// Expected throughput utility of sending at (mcs, width) given the SNR:
/// `rate × P(success)`. Rate selection maximizes this.
pub fn expected_goodput_bps(
    snr_db: f64,
    mcs: Mcs,
    nss: u8,
    width: Width,
    gi: crate::mcs::GuardInterval,
    frame_bytes: usize,
) -> f64 {
    match crate::mcs::vht_rate_bps(mcs, nss, width, gi) {
        Some(bps) => bps as f64 * mpdu_success_rate(snr_db, mcs, width, frame_bytes),
        None => 0.0,
    }
}

/// Exact memoized PER for a fixed (width, frame length) pair.
///
/// The deterministic hot path cannot use a lossy quantized table — a PER
/// off by one ULP shifts a `rng.chance` outcome and the whole trajectory
/// with it (the repo's byte-identity guarantee). Instead this cache maps
/// the SNR's *bit pattern* (`f64::to_bits`, so every distinct input is
/// its own key and NaN can't poison comparisons) and MCS to the exact
/// [`mpdu_error_rate`] result. Testbed links hold only a handful of
/// distinct SNR values (fixed placement ± interferer penalty), so the
/// cache converges to ~100% hits and the per-frame `exp`/`powf` pair
/// drops out of the per-TXOP cost entirely.
#[derive(Debug, Clone)]
pub struct PerCache {
    width: Width,
    frame_bytes: usize,
    cache: BTreeMap<(u64, u8), f64>,
}

impl PerCache {
    pub fn new(width: Width, frame_bytes: usize) -> PerCache {
        PerCache {
            width,
            frame_bytes,
            cache: BTreeMap::new(),
        }
    }

    /// Exactly `mpdu_error_rate(snr_db, mcs, self.width, self.frame_bytes)`.
    pub fn error_rate(&mut self, snr_db: f64, mcs: Mcs) -> f64 {
        *self
            .cache
            .entry((snr_db.to_bits(), mcs.0))
            .or_insert_with(|| mpdu_error_rate(snr_db, mcs, self.width, self.frame_bytes))
    }

    /// Exactly `mpdu_success_rate(...)` via the same cache.
    pub fn success_rate(&mut self, snr_db: f64, mcs: Mcs) -> f64 {
        1.0 - self.error_rate(snr_db, mcs)
    }

    /// Distinct (SNR, MCS) pairs resolved so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Quantized SNR → PER lookup table, one row per MCS.
///
/// The *approximate* fast path for workloads that tolerate bounded error
/// (capacity planning sweeps, what-if explorers): SNR quantized to
/// [`PerLut::STEP_DB`] steps over [`PerLut::MIN_SNR_DB`] ..
/// [`PerLut::MAX_SNR_DB`], PER precomputed per (MCS, step) at build
/// time. Lookups are two integer ops and a load — no float transcendentals.
///
/// Deliberately **not** used by the deterministic simulation paths: a
/// quantized PER differs from the exact value by up to the waterfall
/// slope × step/2 near threshold, which would change `rng.chance` draws
/// and break byte-identical replay. Exact hot paths use [`PerCache`].
/// The table-vs-exact tolerance is pinned by a unit test.
#[derive(Debug, Clone)]
pub struct PerLut {
    width: Width,
    frame_bytes: usize,
    /// `rows[mcs][step]` = PER at `MIN_SNR_DB + step × STEP_DB`.
    rows: Vec<Vec<f64>>,
}

impl PerLut {
    /// Quantization step, dB. At the waterfall's steepest point the PER
    /// slope is WATERFALL_SLOPE/4 per dB (≈0.375), so a 0.25 dB step
    /// bounds the mid-curve interpolation-free error near 0.05 for
    /// 1024-byte frames; longer frames scale it by len/1024.
    pub const STEP_DB: f64 = 0.25;
    pub const MIN_SNR_DB: f64 = -10.0;
    pub const MAX_SNR_DB: f64 = 60.0;

    pub fn new(width: Width, frame_bytes: usize) -> PerLut {
        let steps = ((Self::MAX_SNR_DB - Self::MIN_SNR_DB) / Self::STEP_DB) as usize + 1;
        let rows = (0..=9u8)
            .map(|m| {
                (0..steps)
                    .map(|s| {
                        let snr = Self::MIN_SNR_DB + s as f64 * Self::STEP_DB;
                        mpdu_error_rate(snr, Mcs(m), width, frame_bytes)
                    })
                    .collect()
            })
            .collect();
        PerLut {
            width,
            frame_bytes,
            rows,
        }
    }

    /// PER at the nearest quantized SNR (clamped to the table range).
    pub fn error_rate(&self, snr_db: f64, mcs: Mcs) -> f64 {
        let row = &self.rows[usize::from(mcs.0.min(9))];
        let pos = (snr_db - Self::MIN_SNR_DB) / Self::STEP_DB;
        // Round-to-nearest step, clamped into the table.
        let idx = if pos <= 0.0 {
            0
        } else {
            ((pos + 0.5) as usize).min(row.len() - 1)
        };
        row[idx]
    }

    /// Worst-case |table − exact| over a dense SNR sweep — the bound the
    /// tolerance test enforces, exposed so callers can check their error
    /// budget against their own frame length.
    pub fn max_abs_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for m in 0..=9u8 {
            let mut snr = Self::MIN_SNR_DB;
            while snr <= Self::MAX_SNR_DB {
                let exact = mpdu_error_rate(snr, Mcs(m), self.width, self.frame_bytes);
                worst = worst.max((self.error_rate(snr, Mcs(m)) - exact).abs());
                snr += 0.01;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::GuardInterval;

    #[test]
    fn per_at_threshold_is_half() {
        let t = snr_requirement_db(Mcs(4), Width::W20);
        let per = mpdu_error_rate(t, Mcs(4), Width::W20, 1024);
        assert!((per - 0.5).abs() < 1e-9, "{per}");
    }

    #[test]
    fn per_waterfall_shape() {
        let t = snr_requirement_db(Mcs(4), Width::W20);
        assert!(mpdu_error_rate(t + 4.0, Mcs(4), Width::W20, 1024) < 0.01);
        assert!(mpdu_error_rate(t - 4.0, Mcs(4), Width::W20, 1024) > 0.99);
    }

    #[test]
    fn per_monotone_decreasing_in_snr() {
        let mut prev = 1.1;
        for snr in -10..50 {
            let per = mpdu_error_rate(snr as f64, Mcs(7), Width::W40, 1460);
            assert!(per <= prev);
            prev = per;
        }
    }

    #[test]
    fn longer_frames_fail_more() {
        let t = snr_requirement_db(Mcs(4), Width::W20) + 2.0;
        let short = mpdu_error_rate(t, Mcs(4), Width::W20, 64);
        let long = mpdu_error_rate(t, Mcs(4), Width::W20, 1460);
        assert!(long > short, "{long} !> {short}");
    }

    #[test]
    fn per_is_a_probability() {
        for snr in [-50.0, 0.0, 15.0, 60.0] {
            for m in 0..=9u8 {
                let per = mpdu_error_rate(snr, Mcs(m), Width::W80, 1460);
                assert!((0.0..=1.0).contains(&per), "snr={snr} mcs={m} per={per}");
            }
        }
    }

    #[test]
    fn goodput_peaks_at_the_right_mcs() {
        // At SNR 20 dB on 20 MHz, MCS6 (threshold 20) should beat both
        // MCS9 (way above threshold -> PER ~1) and MCS0 (slow but clean).
        let snr = 20.0;
        let g =
            |m: u8| expected_goodput_bps(snr, Mcs(m), 1, Width::W20, GuardInterval::Short, 1460);
        let best = (0..=9u8).max_by(|&a, &b| g(a).total_cmp(&g(b))).unwrap();
        assert!((4..=6).contains(&best), "best = {best}");
        assert!(g(best) > g(0) && g(best) > g(9));
    }

    #[test]
    fn invalid_mcs_has_zero_goodput() {
        let g = expected_goodput_bps(30.0, Mcs(9), 1, Width::W20, GuardInterval::Short, 1460);
        assert_eq!(g, 0.0);
    }

    #[test]
    fn saturation_early_out_is_bit_identical_to_slow_path() {
        // Recompute the pre-shortcut formula and compare bit patterns on
        // both sides of SATURATION_ARG. The early-out claims *exact*
        // equality, not closeness — byte-identical replay depends on it.
        let slow = |snr_db: f64, mcs: Mcs, width: Width, frame_bytes: usize| -> f64 {
            let margin = snr_db - snr_requirement_db(mcs, width);
            let per_ref = 1.0 / (1.0 + (WATERFALL_SLOPE * margin).exp());
            let success_ref = 1.0 - per_ref;
            if success_ref <= 0.0 {
                return 1.0;
            }
            let scale = frame_bytes as f64 / REF_FRAME_BYTES;
            1.0 - success_ref.powf(scale.max(1e-3))
        };
        let t = snr_requirement_db(Mcs(4), Width::W20);
        for len in [64usize, 1024, 1500, 65_000] {
            for dx in [-80.0, -41.1, -41.0 / 1.5, 41.0 / 1.5, 41.1, 60.0, 500.0] {
                let snr = t + dx;
                let fast = mpdu_error_rate(snr, Mcs(4), Width::W20, len);
                assert_eq!(
                    fast.to_bits(),
                    slow(snr, Mcs(4), Width::W20, len).to_bits(),
                    "snr offset {dx}, len {len}"
                );
            }
        }
        // And the saturated values really are the exact constants.
        assert_eq!(mpdu_error_rate(t + 100.0, Mcs(4), Width::W20, 1500), 0.0);
        assert_eq!(mpdu_error_rate(t - 100.0, Mcs(4), Width::W20, 1500), 1.0);
    }

    #[test]
    fn per_cache_is_exact_and_memoizes() {
        let mut c = PerCache::new(Width::W80, 1500);
        assert!(c.is_empty());
        for snr in [3.7, 15.0, 28.25, 60.0] {
            for m in 0..=9u8 {
                let got = c.error_rate(snr, Mcs(m));
                let exact = mpdu_error_rate(snr, Mcs(m), Width::W80, 1500);
                assert_eq!(got.to_bits(), exact.to_bits(), "snr={snr} mcs={m}");
                assert_eq!(
                    c.success_rate(snr, Mcs(m)).to_bits(),
                    mpdu_success_rate(snr, Mcs(m), Width::W80, 1500).to_bits(),
                );
            }
        }
        let resolved = c.len();
        assert_eq!(resolved, 4 * 10);
        // Hits resolve without growing the cache.
        let _ = c.error_rate(15.0, Mcs(5));
        assert_eq!(c.len(), resolved);
    }

    #[test]
    fn per_lut_tracks_exact_within_tolerance() {
        // Table-vs-exact: the quantized LUT must stay within the
        // documented bound of the exact waterfall everywhere in range.
        // Worst case is mid-waterfall: d(PER)/d(SNR) ≈ slope/4 per dB
        // scaled by len/1024, times half a step of quantization error.
        for (len, tol) in [(1024usize, 0.06), (1500, 0.09)] {
            let lut = PerLut::new(Width::W80, len);
            let worst = lut.max_abs_error();
            assert!(worst <= tol, "len={len}: worst error {worst} > {tol}");
            // And the table is not trivially exact — quantization is real.
            assert!(worst > 0.0, "len={len}: suspiciously exact table");
        }
    }

    #[test]
    fn per_lut_clamps_out_of_range_snr() {
        let lut = PerLut::new(Width::W20, 1024);
        assert_eq!(
            lut.error_rate(-100.0, Mcs(0)),
            lut.error_rate(PerLut::MIN_SNR_DB, Mcs(0))
        );
        assert_eq!(
            lut.error_rate(200.0, Mcs(9)),
            lut.error_rate(PerLut::MAX_SNR_DB, Mcs(9))
        );
        // Saturated ends of the table are exactly 1 and 0.
        assert_eq!(lut.error_rate(-100.0, Mcs(9)), 1.0);
        assert_eq!(lut.error_rate(200.0, Mcs(0)), 0.0);
    }
}

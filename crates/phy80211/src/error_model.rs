//! SNR → packet-error-rate model.
//!
//! Each MCS has a threshold SNR (see [`crate::mcs::snr_requirement_db`]);
//! around that threshold the PER follows a logistic ("waterfall") curve,
//! which is the standard abstraction of coded-OFDM link behaviour: a few
//! dB above threshold the link is clean, a few dB below it is unusable.
//! PER also scales with frame length (more bits, more chances to break).

use crate::channels::Width;
use crate::mcs::{snr_requirement_db, Mcs};

/// Steepness of the PER waterfall, per dB. 1.0–2.0 matches measured
/// 802.11 receiver curves; we use 1.5.
const WATERFALL_SLOPE: f64 = 1.5;

/// Reference frame length for the threshold tables (bytes).
const REF_FRAME_BYTES: f64 = 1024.0;

/// Probability that a single MPDU of `frame_bytes` is corrupted when
/// received at `snr_db` with the given MCS/width.
///
/// At `snr == threshold` the PER is 50% for a 1024-byte frame; +4 dB is
/// effectively clean (<0.3%), −4 dB effectively dead (>99%).
pub fn mpdu_error_rate(snr_db: f64, mcs: Mcs, width: Width, frame_bytes: usize) -> f64 {
    let threshold = snr_requirement_db(mcs, width);
    let margin = snr_db - threshold;
    let per_ref = 1.0 / (1.0 + (WATERFALL_SLOPE * margin).exp());
    // Convert to per-bit success and re-scale to the actual length:
    // s_len = s_ref^(len/ref).
    let success_ref = 1.0 - per_ref;
    if success_ref <= 0.0 {
        return 1.0;
    }
    let scale = frame_bytes as f64 / REF_FRAME_BYTES;
    1.0 - success_ref.powf(scale.max(1e-3))
}

/// Probability that an MPDU survives.
pub fn mpdu_success_rate(snr_db: f64, mcs: Mcs, width: Width, frame_bytes: usize) -> f64 {
    1.0 - mpdu_error_rate(snr_db, mcs, width, frame_bytes)
}

/// Expected throughput utility of sending at (mcs, width) given the SNR:
/// `rate × P(success)`. Rate selection maximizes this.
pub fn expected_goodput_bps(
    snr_db: f64,
    mcs: Mcs,
    nss: u8,
    width: Width,
    gi: crate::mcs::GuardInterval,
    frame_bytes: usize,
) -> f64 {
    match crate::mcs::vht_rate_bps(mcs, nss, width, gi) {
        Some(bps) => bps as f64 * mpdu_success_rate(snr_db, mcs, width, frame_bytes),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::GuardInterval;

    #[test]
    fn per_at_threshold_is_half() {
        let t = snr_requirement_db(Mcs(4), Width::W20);
        let per = mpdu_error_rate(t, Mcs(4), Width::W20, 1024);
        assert!((per - 0.5).abs() < 1e-9, "{per}");
    }

    #[test]
    fn per_waterfall_shape() {
        let t = snr_requirement_db(Mcs(4), Width::W20);
        assert!(mpdu_error_rate(t + 4.0, Mcs(4), Width::W20, 1024) < 0.01);
        assert!(mpdu_error_rate(t - 4.0, Mcs(4), Width::W20, 1024) > 0.99);
    }

    #[test]
    fn per_monotone_decreasing_in_snr() {
        let mut prev = 1.1;
        for snr in -10..50 {
            let per = mpdu_error_rate(snr as f64, Mcs(7), Width::W40, 1460);
            assert!(per <= prev);
            prev = per;
        }
    }

    #[test]
    fn longer_frames_fail_more() {
        let t = snr_requirement_db(Mcs(4), Width::W20) + 2.0;
        let short = mpdu_error_rate(t, Mcs(4), Width::W20, 64);
        let long = mpdu_error_rate(t, Mcs(4), Width::W20, 1460);
        assert!(long > short, "{long} !> {short}");
    }

    #[test]
    fn per_is_a_probability() {
        for snr in [-50.0, 0.0, 15.0, 60.0] {
            for m in 0..=9u8 {
                let per = mpdu_error_rate(snr, Mcs(m), Width::W80, 1460);
                assert!((0.0..=1.0).contains(&per), "snr={snr} mcs={m} per={per}");
            }
        }
    }

    #[test]
    fn goodput_peaks_at_the_right_mcs() {
        // At SNR 20 dB on 20 MHz, MCS6 (threshold 20) should beat both
        // MCS9 (way above threshold -> PER ~1) and MCS0 (slow but clean).
        let snr = 20.0;
        let g =
            |m: u8| expected_goodput_bps(snr, Mcs(m), 1, Width::W20, GuardInterval::Short, 1460);
        let best = (0..=9u8).max_by(|&a, &b| g(a).total_cmp(&g(b))).unwrap();
        assert!((4..=6).contains(&best), "best = {best}");
        assert!(g(best) > g(0) && g(best) > g(9));
    }

    #[test]
    fn invalid_mcs_has_zero_goodput() {
        let g = expected_goodput_bps(30.0, Mcs(9), 1, Width::W20, GuardInterval::Short, 1460);
        assert_eq!(g, 0.0);
    }
}

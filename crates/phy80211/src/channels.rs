//! 802.11 channelization and US (FCC) regulatory tables.
//!
//! Reproduces the spectrum facts the paper leans on (§4.1.1): in the US
//! there are twenty-five 20 MHz, twelve 40 MHz, six 80 MHz and two
//! 160 MHz channels in 5 GHz, versus three non-overlapping channels in
//! 2.4 GHz; DFS rules remove all but nine 20 MHz / four 40 MHz / two
//! 80 MHz / zero 160 MHz of them for non-DFS-certified devices (§4.5.2).
//! Unit tests pin each of those counts.

use std::fmt;

/// Radio band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Band {
    /// 2.4 GHz ISM band (channels 1–11 in the US).
    Band2_4,
    /// 5 GHz U-NII bands.
    Band5,
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Band::Band2_4 => write!(f, "2.4GHz"),
            Band::Band5 => write!(f, "5GHz"),
        }
    }
}

/// Channel width. 80+80 MHz is intentionally unsupported: the paper's
/// deployments do not use it and no Meraki AP of that era shipped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    W20,
    W40,
    W80,
    W160,
}

impl Width {
    /// Width in MHz.
    pub const fn mhz(self) -> u32 {
        match self {
            Width::W20 => 20,
            Width::W40 => 40,
            Width::W80 => 80,
            Width::W160 => 160,
        }
    }

    /// Number of 20 MHz sub-channels.
    pub const fn subchannels(self) -> u32 {
        self.mhz() / 20
    }

    /// The next narrower width, or `None` at 20 MHz. Used when stepping
    /// a bonded channel down under contention.
    pub const fn narrower(self) -> Option<Width> {
        match self {
            Width::W20 => None,
            Width::W40 => Some(Width::W20),
            Width::W80 => Some(Width::W40),
            Width::W160 => Some(Width::W80),
        }
    }

    /// All widths, narrow to wide.
    pub const ALL: [Width; 4] = [Width::W20, Width::W40, Width::W80, Width::W160];

    /// Widths up to and including `self`, narrow to wide — the range the
    /// paper's `NodeP` product iterates over (`b = 20MHz .. cw`).
    pub fn up_to(self) -> &'static [Width] {
        match self {
            Width::W20 => &[Width::W20],
            Width::W40 => &[Width::W20, Width::W40],
            Width::W80 => &[Width::W20, Width::W40, Width::W80],
            Width::W160 => &[Width::W20, Width::W40, Width::W80, Width::W160],
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.mhz())
    }
}

/// An operating channel: a band, a primary 20 MHz channel number, and a
/// bonded width. Equality is structural; two channels interfere when any
/// of their 20 MHz sub-channels overlap in frequency (see
/// [`Channel::overlaps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    pub band: Band,
    /// Primary 20 MHz channel number (e.g. 36, 149, or 1–11 in 2.4 GHz).
    pub primary: u16,
    pub width: Width,
}

/// US 20 MHz channel numbers in 5 GHz: U-NII-1, U-NII-2A (DFS),
/// U-NII-2C (DFS), U-NII-3. 25 channels total.
pub const US_5GHZ_20: [u16; 25] = [
    36, 40, 44, 48, // U-NII-1
    52, 56, 60, 64, // U-NII-2A (DFS)
    100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140, 144, // U-NII-2C (DFS)
    149, 153, 157, 161, 165, // U-NII-3
];

/// US 2.4 GHz channel numbers (1–11).
pub const US_2_4GHZ: [u16; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// The three non-overlapping 2.4 GHz channels.
pub const US_2_4GHZ_NON_OVERLAPPING: [u16; 3] = [1, 6, 11];

/// Is this 5 GHz 20 MHz channel number subject to Dynamic Frequency
/// Selection (radar detection + 1-minute CAC)?
pub fn is_dfs_20(primary: u16) -> bool {
    (52..=64).contains(&primary) || (100..=144).contains(&primary)
}

/// Center frequency in MHz of a 20 MHz channel number.
pub fn center_freq_mhz(band: Band, ch: u16) -> u32 {
    match band {
        Band::Band2_4 => 2407 + 5 * ch as u32,
        Band::Band5 => 5000 + 5 * ch as u32,
    }
}

impl Channel {
    /// Construct a channel, validating that the (band, primary, width)
    /// triple is a legal US configuration.
    pub fn new(band: Band, primary: u16, width: Width) -> Result<Channel, ChannelError> {
        let c = Channel {
            band,
            primary,
            width,
        };
        c.validate()?;
        Ok(c)
    }

    /// 20 MHz channel in 5 GHz (panics on invalid number — test helper).
    pub fn five(primary: u16) -> Channel {
        Channel::new(Band::Band5, primary, Width::W20).expect("valid 5 GHz channel")
    }

    /// 2.4 GHz channel (always 20 MHz wide here; 40 MHz in 2.4 GHz is
    /// disabled in enterprise deployments, matching Meraki practice).
    pub fn two4(primary: u16) -> Channel {
        Channel::new(Band::Band2_4, primary, Width::W20).expect("valid 2.4 GHz channel")
    }

    fn validate(&self) -> Result<(), ChannelError> {
        match self.band {
            Band::Band2_4 => {
                if !US_2_4GHZ.contains(&self.primary) {
                    return Err(ChannelError::UnknownPrimary(self.primary));
                }
                if self.width != Width::W20 {
                    // 40 MHz in 2.4 GHz exists in the standard but is
                    // rejected here by policy (it always overlaps the
                    // three usable channels and Meraki never enables it).
                    return Err(ChannelError::WidthNotAllowed(self.width));
                }
                Ok(())
            }
            Band::Band5 => {
                if !US_5GHZ_20.contains(&self.primary) {
                    return Err(ChannelError::UnknownPrimary(self.primary));
                }
                if self.subchannel_numbers().is_none() {
                    return Err(ChannelError::InvalidBond(self.primary, self.width));
                }
                Ok(())
            }
        }
    }

    /// The 20 MHz channel numbers covered by this (possibly bonded)
    /// channel, or `None` if the bond is not a legal US configuration
    /// (e.g. an 80 MHz bond straddling 144/149, or 160 MHz anywhere
    /// except 36–64 / 100–128).
    pub fn subchannel_numbers(&self) -> Option<Vec<u16>> {
        if self.band == Band::Band2_4 {
            return Some(vec![self.primary]);
        }
        let n = self.width.subchannels() as u16;
        // A bonded block starts at a channel number aligned to the block:
        // blocks are consecutive runs of n 20MHz channels within one
        // contiguous U-NII segment.
        let segments: [&[u16]; 3] = [
            &US_5GHZ_20[0..8],   // 36..64 contiguous
            &US_5GHZ_20[8..20],  // 100..144 contiguous
            &US_5GHZ_20[20..25], // 149..165 contiguous
        ];
        for seg in segments {
            if let Some(pos) = seg.iter().position(|&c| c == self.primary) {
                let block_start = pos - pos % n as usize;
                let block = &seg[block_start..];
                if block.len() < n as usize {
                    return None;
                }
                let block = &block[..n as usize];
                // 160 MHz is only legal in 36–64 and 100–128; channel 165
                // cannot be part of any bond.
                if self.width != Width::W20 && block.contains(&165) {
                    return None;
                }
                if self.width == Width::W160 && block[0] != 36 && block[0] != 100 {
                    return None;
                }
                // Channels 132–144 support 40/80 bonding (132+136, 140+144,
                // 132–144 is only 4 channels which is not 80-aligned in the
                // real table; the real 80MHz block is 132-144? Actually the
                // FCC 80MHz blocks are 36-48,52-64,100-112,116-128,132-144,
                // 149-161 — six blocks). Our segment arithmetic yields
                // exactly those.
                return Some(block.to_vec());
            }
        }
        None
    }

    /// Frequency range [low, high) in MHz covered by this channel.
    pub fn freq_range_mhz(&self) -> (u32, u32) {
        match self.band {
            Band::Band2_4 => {
                // 2.4 GHz 802.11 transmissions occupy ~22 MHz (DSSS mask);
                // we use ±11 MHz around the center.
                let c = center_freq_mhz(self.band, self.primary);
                (c - 11, c + 11)
            }
            Band::Band5 => {
                let subs = self
                    .subchannel_numbers()
                    .expect("validated channel has subchannels");
                let lo = center_freq_mhz(self.band, subs[0]) - 10;
                let hi = center_freq_mhz(self.band, *subs.last().unwrap()) + 10;
                (lo, hi)
            }
        }
    }

    /// Do two channels share any spectrum? This is the interference
    /// predicate: for an 80 MHz transmission, energy on any of its four
    /// 20 MHz sub-channels causes contention or corruption (§4.1.1).
    pub fn overlaps(&self, other: &Channel) -> bool {
        if self.band != other.band {
            return false;
        }
        let (a_lo, a_hi) = self.freq_range_mhz();
        let (b_lo, b_hi) = other.freq_range_mhz();
        a_lo < b_hi && b_lo < a_hi
    }

    /// True if any 20 MHz sub-channel requires DFS.
    pub fn requires_dfs(&self) -> bool {
        self.band == Band::Band5
            && self
                .subchannel_numbers()
                .map(|subs| subs.iter().any(|&c| is_dfs_20(c)))
                .unwrap_or(false)
    }

    /// Same channel narrowed one step (keeps the primary).
    pub fn narrowed(&self) -> Option<Channel> {
        let w = self.width.narrower()?;
        Channel::new(self.band, self.primary, w).ok()
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ch{}@{}", self.band, self.primary, self.width)
    }
}

/// Errors from [`Channel::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// Channel number not in the US table for the band.
    UnknownPrimary(u16),
    /// Width not permitted in this band by policy.
    WidthNotAllowed(Width),
    /// The (primary, width) pair does not form a legal bonded block.
    InvalidBond(u16, Width),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::UnknownPrimary(c) => write!(f, "unknown channel number {c}"),
            ChannelError::WidthNotAllowed(w) => write!(f, "width {w} not allowed in this band"),
            ChannelError::InvalidBond(c, w) => write!(f, "channel {c} cannot bond to {w}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Enumerate every legal US channel of the given band and width.
pub fn all_channels(band: Band, width: Width) -> Vec<Channel> {
    match band {
        Band::Band2_4 => {
            if width == Width::W20 {
                US_2_4GHZ.iter().map(|&c| Channel::two4(c)).collect()
            } else {
                Vec::new()
            }
        }
        Band::Band5 => {
            let mut out = Vec::new();
            let mut seen_blocks: Vec<Vec<u16>> = Vec::new();
            for &c in &US_5GHZ_20 {
                if let Ok(ch) = Channel::new(Band::Band5, c, width) {
                    let block = ch.subchannel_numbers().unwrap();
                    if !seen_blocks.contains(&block) {
                        seen_blocks.push(block);
                        out.push(ch);
                    }
                }
            }
            out
        }
    }
}

/// Enumerate legal channels, excluding DFS-gated ones (the choice set for
/// devices without DFS certification, §4.5.2).
pub fn non_dfs_channels(band: Band, width: Width) -> Vec<Channel> {
    all_channels(band, width)
        .into_iter()
        .filter(|c| !c.requires_dfs())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's §4.1.1 channel counts, pinned exactly.
    #[test]
    fn us_5ghz_channel_counts_match_fcc() {
        assert_eq!(all_channels(Band::Band5, Width::W20).len(), 25);
        assert_eq!(all_channels(Band::Band5, Width::W40).len(), 12);
        assert_eq!(all_channels(Band::Band5, Width::W80).len(), 6);
        assert_eq!(all_channels(Band::Band5, Width::W160).len(), 2);
    }

    // The paper's §4.5.2 non-DFS counts, pinned exactly.
    #[test]
    fn non_dfs_counts_match_paper() {
        assert_eq!(non_dfs_channels(Band::Band5, Width::W20).len(), 9);
        assert_eq!(non_dfs_channels(Band::Band5, Width::W40).len(), 4);
        assert_eq!(non_dfs_channels(Band::Band5, Width::W80).len(), 2);
        assert_eq!(non_dfs_channels(Band::Band5, Width::W160).len(), 0);
    }

    #[test]
    fn two4_has_11_channels_3_clean() {
        assert_eq!(all_channels(Band::Band2_4, Width::W20).len(), 11);
        let c1 = Channel::two4(1);
        let c6 = Channel::two4(6);
        let c11 = Channel::two4(11);
        assert!(!c1.overlaps(&c6));
        assert!(!c6.overlaps(&c11));
        assert!(!c1.overlaps(&c11));
    }

    #[test]
    fn adjacent_two4_channels_overlap() {
        assert!(Channel::two4(1).overlaps(&Channel::two4(3)));
        assert!(Channel::two4(4).overlaps(&Channel::two4(6)));
        assert!(!Channel::two4(1).overlaps(&Channel::two4(6)));
    }

    #[test]
    fn bonding_blocks_are_correct() {
        let c = Channel::new(Band::Band5, 44, Width::W80).unwrap();
        assert_eq!(c.subchannel_numbers().unwrap(), vec![36, 40, 44, 48]);
        let c = Channel::new(Band::Band5, 157, Width::W40).unwrap();
        assert_eq!(c.subchannel_numbers().unwrap(), vec![157, 161]);
        let c = Channel::new(Band::Band5, 56, Width::W160).unwrap();
        assert_eq!(
            c.subchannel_numbers().unwrap(),
            vec![36, 40, 44, 48, 52, 56, 60, 64]
        );
    }

    #[test]
    fn ch165_cannot_bond() {
        assert!(Channel::new(Band::Band5, 165, Width::W40).is_err());
        assert!(Channel::new(Band::Band5, 165, Width::W80).is_err());
        assert!(Channel::new(Band::Band5, 165, Width::W20).is_ok());
    }

    #[test]
    fn no_160_in_unii3() {
        assert!(Channel::new(Band::Band5, 149, Width::W160).is_err());
        assert!(Channel::new(Band::Band5, 132, Width::W160).is_err());
    }

    #[test]
    fn dfs_flags() {
        assert!(!Channel::five(36).requires_dfs());
        assert!(Channel::five(52).requires_dfs());
        assert!(Channel::five(100).requires_dfs());
        assert!(Channel::five(144).requires_dfs());
        assert!(!Channel::five(149).requires_dfs());
        // A 160 MHz bond at 36 spans DFS channels 52-64.
        let wide = Channel::new(Band::Band5, 36, Width::W160).unwrap();
        assert!(wide.requires_dfs());
        // An 80 MHz bond at 36 does not.
        let w80 = Channel::new(Band::Band5, 36, Width::W80).unwrap();
        assert!(!w80.requires_dfs());
    }

    #[test]
    fn overlap_is_symmetric_and_subchannel_based() {
        let wide = Channel::new(Band::Band5, 36, Width::W80).unwrap();
        let narrow = Channel::five(48);
        assert!(wide.overlaps(&narrow));
        assert!(narrow.overlaps(&wide));
        let far = Channel::five(149);
        assert!(!wide.overlaps(&far));
    }

    #[test]
    fn different_bands_never_overlap() {
        assert!(!Channel::two4(1).overlaps(&Channel::five(36)));
    }

    #[test]
    fn narrowed_steps_down() {
        let c = Channel::new(Band::Band5, 36, Width::W80).unwrap();
        let n = c.narrowed().unwrap();
        assert_eq!(n.width, Width::W40);
        assert_eq!(n.primary, 36);
        assert!(Channel::five(36).narrowed().is_none());
    }

    #[test]
    fn freq_ranges() {
        let c = Channel::five(36);
        assert_eq!(c.freq_range_mhz(), (5170, 5190));
        let w = Channel::new(Band::Band5, 36, Width::W80).unwrap();
        assert_eq!(w.freq_range_mhz(), (5170, 5250));
        assert_eq!(center_freq_mhz(Band::Band2_4, 6), 2437);
    }

    #[test]
    fn width_up_to_matches_paper_product_range() {
        assert_eq!(Width::W80.up_to(), &[Width::W20, Width::W40, Width::W80]);
        assert_eq!(Width::W20.up_to(), &[Width::W20]);
    }

    #[test]
    fn invalid_channels_rejected() {
        assert!(Channel::new(Band::Band5, 37, Width::W20).is_err());
        assert!(Channel::new(Band::Band2_4, 12, Width::W20).is_err());
        assert!(Channel::new(Band::Band2_4, 6, Width::W40).is_err());
    }

    #[test]
    fn display_formats() {
        let c = Channel::new(Band::Band5, 36, Width::W80).unwrap();
        assert_eq!(format!("{c}"), "5GHz ch36@80MHz");
    }
}

//! `healthctl` — triage health snapshots produced by `telemetry::health`.
//!
//! The health engine serializes each run's alert stream to canonical
//! JSON: a [`HealthReport`] (`{"steps":…`) from a single testbed run,
//! or a [`HealthRollup`] (`{"by_rule":…`) from a fleet run. This crate
//! is the reader side: a library of renderers plus a thin CLI
//! (`src/main.rs`) exposing them:
//!
//! * `healthctl summary <health.json>` — steps, score, alert counts by
//!   rule and severity, and (for rollups) the worst-N networks;
//! * `healthctl alerts <health.json> [--rule <r>] [--network <n>]
//!   [--severity <s>]` — filtered alert listing;
//! * both take `--json` for a machine-readable rendering (one JSON
//!   object, byte-stable for a given snapshot);
//! * `healthctl explain <health.json> [<idx>] [--trace <dump.bin>]` —
//!   one alert in detail. With no index, picks the worst alert
//!   (highest severity, earliest raise). With `--trace`, resolves the
//!   alert's causal link through the flight dump and prints the full
//!   `tracectl chain` for its flow;
//! * `healthctl diff <a> <b>` — determinism triage: exits 1 when the
//!   two snapshots diverge, pointing at the first difference.
//!
//! Every renderer returns a `String` so tests assert on output
//! verbatim; only `main` prints.

use telemetry::flight::FlightDump;
use telemetry::{Alert, HealthReport, HealthRollup};

/// A parsed snapshot file — either kind, distinguished by the first
/// JSON key (`to_json` pins the key order, so the prefix is reliable).
#[derive(Debug, Clone)]
pub enum Loaded {
    Report(HealthReport),
    Rollup(HealthRollup),
}

impl Loaded {
    /// Parse either snapshot flavor from its canonical JSON.
    pub fn from_json(text: &str) -> Result<Loaded, String> {
        let t = text.trim_end();
        if t.starts_with("{\"by_rule\":") {
            HealthRollup::parse(t).map(Loaded::Rollup)
        } else {
            HealthReport::parse(t).map(Loaded::Report)
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Loaded::Report(_) => "report",
            Loaded::Rollup(_) => "rollup",
        }
    }

    /// The alert stream, whichever flavor holds it.
    pub fn report(&self) -> &HealthReport {
        match self {
            Loaded::Report(r) => r,
            Loaded::Rollup(r) => &r.report,
        }
    }

    /// Canonical re-serialization (used by `diff`).
    pub fn to_json(&self) -> String {
        match self {
            Loaded::Report(r) => r.to_json(),
            Loaded::Rollup(r) => r.to_json(),
        }
    }
}

// ---- JSON renderers -----------------------------------------------
//
// `Alert::to_json` is private to telemetry (it is a fragment of the
// canonical snapshot grammar), so the machine-readable listings here
// are built from the public fields with the same conventions: fixed
// key order, `{:?}` floats, minimal escaping. Output is byte-stable
// for a given snapshot — ci.sh smoke-tests it.

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn alert_json(a: &Alert, out: &mut String) {
    out.push_str("{\"component\":");
    json_escape(&a.component, out);
    out.push_str(",\"rule\":");
    json_escape(&a.rule, out);
    out.push_str(",\"severity\":\"");
    out.push_str(a.severity.as_str());
    out.push_str("\",\"raised_at_ns\":");
    out.push_str(&a.raised_at.as_nanos().to_string());
    out.push_str(",\"cleared_at_ns\":");
    match a.cleared_at {
        Some(t) => out.push_str(&t.as_nanos().to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"flow\":");
    match a.cause_flow() {
        Some(f) => out.push_str(&f.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"value\":");
    out.push_str(&format!("{:?}", a.value));
    out.push_str(",\"threshold\":");
    out.push_str(&format!("{:?}", a.threshold));
    out.push('}');
}

fn count_map_json(counts: &std::collections::BTreeMap<String, u64>, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape(k, out);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// `summary` as one JSON object (`--json`).
pub fn summary_json(loaded: &Loaded) -> String {
    let r = loaded.report();
    let mut out = String::new();
    out.push_str("{\"kind\":\"");
    out.push_str(loaded.kind());
    out.push_str("\",\"steps\":");
    out.push_str(&r.steps.to_string());
    out.push_str(",\"alerts\":");
    out.push_str(&r.alerts.len().to_string());
    out.push_str(",\"open\":");
    out.push_str(&r.open().count().to_string());
    out.push_str(",\"score\":");
    out.push_str(&r.score().to_string());
    out.push_str(",\"by_rule\":");
    count_map_json(&r.counts_by_rule(), &mut out);
    out.push_str(",\"by_severity\":");
    count_map_json(&r.counts_by_severity(), &mut out);
    if let Loaded::Rollup(roll) = loaded {
        out.push_str(",\"worst\":[");
        for (i, (label, score)) in roll.worst.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            json_escape(label, &mut out);
            out.push(',');
            out.push_str(&score.to_string());
            out.push(']');
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// `alerts` as one JSON object (`--json`), same filter semantics and
/// canonical order as the text listing.
pub fn alerts_json(loaded: &Loaded, filter: &AlertFilter) -> String {
    let mut out = String::from("{\"alerts\":[");
    let mut n = 0;
    for a in &loaded.report().alerts {
        if filter.accepts(a) {
            if n > 0 {
                out.push(',');
            }
            alert_json(a, &mut out);
            n += 1;
        }
    }
    out.push_str("],\"matched\":");
    out.push_str(&n.to_string());
    out.push_str("}\n");
    out
}

fn alert_line(a: &Alert) -> String {
    let state = match a.cleared_at {
        Some(t) => format!("cleared {t}"),
        None => "open".to_owned(),
    };
    let cause = match a.cause_flow() {
        Some(f) => format!("  flow {f}"),
        None => String::new(),
    };
    format!(
        "{:>14}  {:<20} {:<16} {:<8} value={:.3} threshold={:.3}  {state}{cause}",
        a.raised_at.to_string(),
        a.component,
        a.rule,
        a.severity.as_str(),
        a.value,
        a.threshold,
    )
}

/// Overview: steps, score, counts by rule/severity, worst networks.
pub fn summary(loaded: &Loaded) -> String {
    let r = loaded.report();
    let open = r.open().count();
    let mut out = format!(
        "{}: {} detector steps, {} alerts ({} open), score {}\n",
        loaded.kind(),
        r.steps,
        r.alerts.len(),
        open,
        r.score(),
    );
    if r.alerts.is_empty() {
        out.push_str("no alerts\n");
        return out;
    }
    out.push_str("by rule:\n");
    for (rule, n) in r.counts_by_rule() {
        out.push_str(&format!("  {rule:<20} {n}\n"));
    }
    out.push_str("by severity:\n");
    for (sev, n) in r.counts_by_severity() {
        out.push_str(&format!("  {sev:<20} {n}\n"));
    }
    if let Loaded::Rollup(roll) = loaded {
        out.push_str("worst networks:\n");
        for (label, score) in &roll.worst {
            out.push_str(&format!("  {label:<20} score {score}\n"));
        }
    }
    out
}

/// Filters for the `alerts` listing. `network` matches a component
/// exactly or as a dotted prefix (`net3` matches `net3.sched`).
#[derive(Debug, Clone, Default)]
pub struct AlertFilter {
    pub rule: Option<String>,
    pub network: Option<String>,
    pub severity: Option<String>,
}

impl AlertFilter {
    fn accepts(&self, a: &Alert) -> bool {
        if let Some(r) = &self.rule {
            if a.rule != *r {
                return false;
            }
        }
        if let Some(n) = &self.network {
            if a.component != *n && !a.component.starts_with(&format!("{n}.")) {
                return false;
            }
        }
        if let Some(s) = &self.severity {
            if a.severity.as_str() != s {
                return false;
            }
        }
        true
    }
}

/// Alert listing, one line per alert, in canonical report order.
pub fn alerts(loaded: &Loaded, filter: &AlertFilter) -> String {
    let mut out = String::new();
    let mut n = 0;
    for a in &loaded.report().alerts {
        if filter.accepts(a) {
            out.push_str(&alert_line(a));
            out.push('\n');
            n += 1;
        }
    }
    out.push_str(&format!("{n} alerts matched\n"));
    out
}

/// The "worst" alert: highest severity first, then earliest raise.
/// Ties resolve to the lowest index, so the pick is deterministic.
pub fn worst_alert(r: &HealthReport) -> Option<usize> {
    r.alerts
        .iter()
        .enumerate()
        .min_by_key(|(_, a)| (std::cmp::Reverse(a.severity.weight()), a.raised_at))
        .map(|(i, _)| i)
}

/// One alert in detail. `idx` indexes the canonical alert order (as
/// printed by `alerts`); `None` picks the worst alert. When a flight
/// dump is supplied and the alert carries a causal link, the full
/// `tracectl chain` for its flow is appended — the complete story from
/// TCP segment to airtime for the transmission that tripped the rule.
pub fn explain(loaded: &Loaded, idx: Option<usize>, dump: Option<&FlightDump>) -> String {
    let r = loaded.report();
    let Some(idx) = idx.or_else(|| worst_alert(r)) else {
        return "no alerts\n".to_owned();
    };
    let Some(a) = r.alerts.get(idx) else {
        return format!("no alert #{idx} (report has {})\n", r.alerts.len());
    };
    let mut out = format!("alert #{idx}\n{}\n", alert_line(a));
    match (a.cause_flow(), dump) {
        (None, _) => out.push_str("no causal link recorded for this alert\n"),
        (Some(f), None) => out.push_str(&format!(
            "causal flow {f} — rerun with --trace <dump.bin> to resolve the chain\n"
        )),
        (Some(f), Some(d)) => {
            out.push_str(&format!("causal chain (tracectl chain {f}):\n"));
            out.push_str(&tracectl::chain(d, Some(f)));
        }
    }
    out
}

/// Determinism triage. Returns the rendered report and whether the two
/// snapshots are identical (the CLI exits non-zero when they are not).
pub fn diff(a: &Loaded, b: &Loaded) -> (String, bool) {
    if a.to_json() == b.to_json() {
        return ("snapshots are byte-identical\n".to_owned(), true);
    }
    let mut out = String::from("snapshots DIFFER\n");
    let (ra, rb) = (a.report(), b.report());
    if a.kind() != b.kind() {
        out.push_str(&format!("kind: {} vs {}\n", a.kind(), b.kind()));
    }
    if ra.steps != rb.steps {
        out.push_str(&format!("steps: {} vs {}\n", ra.steps, rb.steps));
    }
    if ra.alerts.len() != rb.alerts.len() {
        out.push_str(&format!(
            "alerts: {} vs {}\n",
            ra.alerts.len(),
            rb.alerts.len()
        ));
    }
    let (ca, cb) = (ra.counts_by_rule(), rb.counts_by_rule());
    for rule in ca.keys().chain(cb.keys()) {
        let (na, nb) = (
            ca.get(rule).copied().unwrap_or(0),
            cb.get(rule).copied().unwrap_or(0),
        );
        if na != nb {
            out.push_str(&format!("rule {rule}: {na} vs {nb}\n"));
        }
    }
    if let Some(i) = ra
        .alerts
        .iter()
        .zip(rb.alerts.iter())
        .position(|(x, y)| x != y)
    {
        out.push_str(&format!(
            "first divergence at alert {i}\n  first:  {}\n  second: {}\n",
            alert_line(&ra.alerts[i]),
            alert_line(&rb.alerts[i]),
        ));
    }
    (out, false)
}

/// CLI usage text.
pub fn usage() -> String {
    [
        "healthctl — triage health snapshots",
        "",
        "usage:",
        "  healthctl summary <health.json> [--json]",
        "  healthctl alerts <health.json> [--rule <r>] [--network <n>] [--severity <s>] [--json]",
        "  healthctl explain <health.json> [<idx>] [--trace <dump.bin>]",
        "  healthctl diff <a.json> <b.json>",
        "",
    ]
    .join("\n")
}

fn load(path: &str) -> Result<Loaded, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Loaded::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_dump(path: &str) -> Result<FlightDump, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FlightDump::parse(&bytes).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Dispatch a full argv (without the program name). Returns the output
/// to print and the process exit code; `Err` is a usage/IO error whose
/// message goes to stderr with exit code 2.
pub fn run(args: &[String]) -> Result<(String, i32), String> {
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("summary") => {
            let path = args.get(1).ok_or_else(usage)?;
            let mut json = false;
            for a in &args[2..] {
                if a == "--json" {
                    json = true;
                } else {
                    return Err(format!("unknown summary argument {a}\n{}", usage()));
                }
            }
            let loaded = load(path)?;
            let out = if json {
                summary_json(&loaded)
            } else {
                summary(&loaded)
            };
            Ok((out, 0))
        }
        Some("alerts") => {
            let path = args.get(1).ok_or_else(usage)?;
            let mut filter = AlertFilter::default();
            let mut json = false;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--rule" => filter.rule = it.next().cloned(),
                    "--network" => filter.network = it.next().cloned(),
                    "--severity" => filter.severity = it.next().cloned(),
                    "--json" => json = true,
                    other => {
                        if let Some(p) = other.strip_prefix("--rule=") {
                            filter.rule = Some(p.to_owned());
                        } else if let Some(p) = other.strip_prefix("--network=") {
                            filter.network = Some(p.to_owned());
                        } else if let Some(p) = other.strip_prefix("--severity=") {
                            filter.severity = Some(p.to_owned());
                        } else {
                            return Err(format!("unknown alerts argument {other}\n{}", usage()));
                        }
                    }
                }
            }
            let loaded = load(path)?;
            let out = if json {
                alerts_json(&loaded, &filter)
            } else {
                alerts(&loaded, &filter)
            };
            Ok((out, 0))
        }
        Some("explain") => {
            let path = args.get(1).ok_or_else(usage)?;
            let mut idx: Option<usize> = None;
            let mut trace: Option<String> = None;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--trace" => trace = it.next().cloned(),
                    other => {
                        if let Some(p) = other.strip_prefix("--trace=") {
                            trace = Some(p.to_owned());
                        } else if idx.is_none() && !other.starts_with("--") {
                            idx = Some(
                                other
                                    .parse()
                                    .map_err(|e| format!("bad alert index {other}: {e}"))?,
                            );
                        } else {
                            return Err(format!("unknown explain argument {other}\n{}", usage()));
                        }
                    }
                }
            }
            let dump = trace.as_deref().map(load_dump).transpose()?;
            Ok((explain(&load(path)?, idx, dump.as_ref()), 0))
        }
        Some("diff") => {
            let pa = args.get(1).ok_or_else(usage)?;
            let pb = args.get(2).ok_or_else(usage)?;
            let (out, same) = diff(&load(pa)?, &load(pb)?);
            Ok((out, if same { 0 } else { 1 }))
        }
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{SimDuration, SimTime};
    use telemetry::flight::{cause_for, AirKind, FlightRecorder, TraceRecord};
    use telemetry::health::RULE_AMPDU_COLLAPSE;
    use telemetry::{CauseId, Severity};

    fn mk_alert(component: &str, rule: &str, sev: Severity, at_ms: u64) -> Alert {
        Alert {
            component: component.to_owned(),
            rule: rule.to_owned(),
            severity: sev,
            raised_at: SimTime::from_millis(at_ms),
            cleared_at: None,
            cause: None,
            value: 2.0,
            threshold: 1.8,
        }
    }

    fn mk_report() -> HealthReport {
        let mut r = HealthReport {
            steps: 12,
            alerts: Vec::new(),
        };
        let mut warn = mk_alert("ap0", RULE_AMPDU_COLLAPSE, Severity::Warning, 100);
        warn.cleared_at = Some(SimTime::from_millis(300));
        r.alerts.push(warn);
        let mut crit = mk_alert("ap1", "rto-storm", Severity::Critical, 200);
        crit.cause = Some(CauseId(cause_for(3, 1460).0));
        r.alerts.push(crit);
        r
    }

    fn mk_rollup() -> HealthRollup {
        HealthRollup::rollup(
            [
                ("net0".to_owned(), &mk_report()),
                ("net1".to_owned(), &HealthReport::default()),
            ],
            5,
        )
    }

    fn sample_dump() -> FlightDump {
        let rec = FlightRecorder::new(16);
        let t = SimTime::from_micros;
        let c = cause_for(3, 1460);
        rec.emit(
            "tcp.wire",
            t(1),
            c,
            TraceRecord::TcpSeg {
                flow: 3,
                seq: 1460,
                len: 1460,
                retransmit: false,
            },
        );
        rec.emit(
            "mac.ampdu",
            t(2),
            c,
            TraceRecord::AmpduBuild {
                flow: 3,
                frames: 8,
                bytes: 11_680,
            },
        );
        rec.emit(
            "mac.tx",
            t(3),
            c,
            TraceRecord::MacTx {
                flow: 3,
                seq: 1460,
                delivered: true,
            },
        );
        rec.emit(
            "mac.back",
            t(4),
            c,
            TraceRecord::BlockAck {
                flow: 3,
                acked: 8,
                lost: 0,
            },
        );
        rec.emit(
            "fastack.synth",
            t(5),
            c,
            TraceRecord::FastAckSynth {
                flow: 3,
                ack: 2920,
                synthetic: true,
            },
        );
        rec.emit(
            "air",
            t(5),
            CauseId::NONE,
            TraceRecord::AirtimeSpan {
                kind: AirKind::Beacon,
                dur: SimDuration::from_micros(120),
            },
        );
        rec.snapshot()
    }

    #[test]
    fn loaded_detects_both_snapshot_kinds() {
        let rep = Loaded::from_json(&mk_report().to_json()).unwrap();
        assert_eq!(rep.kind(), "report");
        let roll = Loaded::from_json(&mk_rollup().to_json()).unwrap();
        assert_eq!(roll.kind(), "rollup");
        assert_eq!(roll.report().alerts.len(), 2);
        assert!(Loaded::from_json("{nope}").is_err());
    }

    #[test]
    fn summary_counts_rules_and_worst_networks() {
        let s = summary(&Loaded::Report(mk_report()));
        assert!(
            s.starts_with("report: 12 detector steps, 2 alerts (1 open), score 4"),
            "{s}"
        );
        assert!(s.contains("ampdu-collapse       1"), "{s}");
        assert!(s.contains("critical             1"), "{s}");

        let s = summary(&Loaded::Rollup(mk_rollup()));
        assert!(s.starts_with("rollup:"), "{s}");
        assert!(s.contains("worst networks:"), "{s}");
        assert!(s.contains("net0                 score 4"), "{s}");

        let quiet = summary(&Loaded::Report(HealthReport::default()));
        assert!(quiet.contains("no alerts"), "{quiet}");
    }

    #[test]
    fn alerts_filters_compose() {
        let l = Loaded::Rollup(mk_rollup());
        let all = alerts(&l, &AlertFilter::default());
        assert!(all.contains("2 alerts matched"), "{all}");
        let f = AlertFilter {
            rule: Some(RULE_AMPDU_COLLAPSE.to_owned()),
            ..AlertFilter::default()
        };
        assert!(alerts(&l, &f).contains("1 alerts matched"));
        let f = AlertFilter {
            network: Some("net0".to_owned()),
            ..AlertFilter::default()
        };
        assert!(alerts(&l, &f).contains("2 alerts matched"));
        let f = AlertFilter {
            network: Some("net1".to_owned()),
            ..AlertFilter::default()
        };
        assert!(alerts(&l, &f).contains("0 alerts matched"));
        let f = AlertFilter {
            severity: Some("critical".to_owned()),
            ..AlertFilter::default()
        };
        assert!(alerts(&l, &f).contains("1 alerts matched"));
    }

    #[test]
    fn explain_picks_worst_and_resolves_chain() {
        let l = Loaded::Report(mk_report());
        // Worst = the critical alert (index 1 in canonical order).
        assert_eq!(worst_alert(l.report()), Some(1));
        let out = explain(&l, None, None);
        assert!(out.contains("alert #1"), "{out}");
        assert!(out.contains("rto-storm"), "{out}");
        assert!(out.contains("rerun with --trace"), "{out}");

        let dump = sample_dump();
        let out = explain(&l, None, Some(&dump));
        assert!(out.contains("causal chain (tracectl chain 3)"), "{out}");
        assert!(out.contains("chain complete"), "{out}");

        // The warning has no causal link.
        let out = explain(&l, Some(0), Some(&dump));
        assert!(out.contains("no causal link recorded"), "{out}");

        assert!(explain(&l, Some(9), None).contains("no alert #9"));
        let empty = Loaded::Report(HealthReport::default());
        assert_eq!(explain(&empty, None, None), "no alerts\n");
    }

    #[test]
    fn json_renderers_are_canonical_and_filterable() {
        let l = Loaded::Report(mk_report());
        let s = summary_json(&l);
        assert!(
            s.starts_with("{\"kind\":\"report\",\"steps\":12,\"alerts\":2,\"open\":1,\"score\":4,"),
            "{s}"
        );
        assert!(
            s.contains("\"by_rule\":{\"ampdu-collapse\":1,\"rto-storm\":1}"),
            "{s}"
        );
        assert!(
            s.contains("\"by_severity\":{\"critical\":1,\"warning\":1}"),
            "{s}"
        );
        assert!(
            !s.contains("\"worst\""),
            "report summary has no worst list: {s}"
        );
        assert!(s.ends_with("}\n"), "{s}");

        let roll = Loaded::Rollup(mk_rollup());
        let s = summary_json(&roll);
        assert!(s.contains("\"kind\":\"rollup\""), "{s}");
        assert!(s.contains("\"worst\":[[\"net0\",4]]"), "{s}");

        let a = alerts_json(&roll, &AlertFilter::default());
        assert!(
            a.starts_with("{\"alerts\":[{\"component\":\"net0.ap0\","),
            "{a}"
        );
        assert!(a.contains("\"severity\":\"critical\""), "{a}");
        assert!(a.contains("\"flow\":3"), "{a}");
        assert!(a.contains("\"cleared_at_ns\":null"), "{a}");
        assert!(a.contains("\"value\":2.0,\"threshold\":1.8"), "{a}");
        assert!(a.ends_with("],\"matched\":2}\n"), "{a}");

        let f = AlertFilter {
            severity: Some("critical".to_owned()),
            ..AlertFilter::default()
        };
        let a = alerts_json(&roll, &f);
        assert!(a.ends_with("],\"matched\":1}\n"), "{a}");
        let none = alerts_json(
            &Loaded::Report(HealthReport::default()),
            &AlertFilter::default(),
        );
        assert_eq!(none, "{\"alerts\":[],\"matched\":0}\n");
    }

    #[test]
    fn diff_reports_identity_and_divergence() {
        let a = Loaded::Report(mk_report());
        let (out, same) = diff(&a, &a.clone());
        assert!(same, "{out}");

        let mut other = mk_report();
        other.alerts[1].severity = Severity::Warning;
        let (out, same) = diff(&a, &Loaded::Report(other));
        assert!(!same);
        assert!(out.contains("snapshots DIFFER"), "{out}");
        assert!(out.contains("first divergence at alert 1"), "{out}");

        let mut fewer = mk_report();
        fewer.alerts.pop();
        let (out, _) = diff(&a, &Loaded::Report(fewer));
        assert!(out.contains("alerts: 2 vs 1"), "{out}");
        assert!(out.contains("rule rto-storm: 1 vs 0"), "{out}");
    }

    #[test]
    fn run_dispatches_and_reports_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["nonsense".to_owned()]).is_err());

        let dir = std::env::temp_dir().join("healthctl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("health.json");
        std::fs::write(&p, mk_rollup().to_json()).unwrap();
        let path = p.to_string_lossy().to_string();

        let (out, code) = run(&["summary".to_owned(), path.clone()]).unwrap();
        assert_eq!(code, 0);
        assert!(out.starts_with("rollup:"), "{out}");

        let (out, code) = run(&[
            "alerts".to_owned(),
            path.clone(),
            "--rule".to_owned(),
            RULE_AMPDU_COLLAPSE.to_owned(),
            "--network=net0".to_owned(),
        ])
        .unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("1 alerts matched"), "{out}");

        let (out, code) = run(&["summary".to_owned(), path.clone(), "--json".to_owned()]).unwrap();
        assert_eq!(code, 0);
        assert!(out.starts_with("{\"kind\":\"rollup\""), "{out}");
        let (out, code) = run(&["alerts".to_owned(), path.clone(), "--json".to_owned()]).unwrap();
        assert_eq!(code, 0);
        assert!(out.starts_with("{\"alerts\":["), "{out}");
        assert!(run(&["summary".to_owned(), path.clone(), "--bogus".to_owned()]).is_err());

        let dump_p = dir.join("dump.bin");
        std::fs::write(&dump_p, sample_dump().to_bytes()).unwrap();
        let (out, code) = run(&[
            "explain".to_owned(),
            path.clone(),
            "--trace".to_owned(),
            dump_p.to_string_lossy().to_string(),
        ])
        .unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("chain complete"), "{out}");

        let (_, code) = run(&["diff".to_owned(), path.clone(), path.clone()]).unwrap();
        assert_eq!(code, 0);

        let p2 = dir.join("other.json");
        std::fs::write(&p2, mk_report().to_json()).unwrap();
        let (out, code) =
            run(&["diff".to_owned(), path, p2.to_string_lossy().to_string()]).unwrap();
        assert_eq!(code, 1);
        assert!(out.contains("snapshots DIFFER"), "{out}");

        assert!(run(&["summary".to_owned(), "/nonexistent.json".to_owned()]).is_err());
    }
}

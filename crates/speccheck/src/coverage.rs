//! Joining the registry with the scanned citations into a coverage
//! report, plus the byte-stable text and JSON renderers.
//!
//! The CI contract (mirrored in `scripts/ci.sh` and DESIGN.md "Spec
//! compliance"):
//!
//! - exit 0 — every MUST clause has ≥ 1 implementation citation AND
//!   ≥ 1 test citation, and the annotations themselves are sound;
//! - exit 1 — an uncovered MUST clause, a citation of a nonexistent
//!   clause, an unanchored citation, or a malformed directive;
//! - exit 2 (from the CLI layer) — usage, I/O or registry-parse errors.
//!
//! SHOULD/MAY gaps are reported as advisory but never fail the build.
//! All output is deterministic: specs sort by id, clauses keep registry
//! declaration order (RFC section order), sites sort by (file, line).

use crate::annotations::{Citation, CiteKind, Problem, ProblemKind};
use crate::registry::{Level, Registry};
use std::collections::BTreeMap;

/// One citation site, stripped to location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: u32,
}

/// Coverage status of one clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Covered,
    ImplOnly,
    TestOnly,
    Uncovered,
}

impl Status {
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Covered => "covered",
            Status::ImplOnly => "impl-only",
            Status::TestOnly => "test-only",
            Status::Uncovered => "uncovered",
        }
    }
}

/// One clause joined with its citation sites.
#[derive(Debug, Clone)]
pub struct ClauseCoverage {
    pub id: String,
    pub level: Level,
    pub text: String,
    pub impl_sites: Vec<Site>,
    pub test_sites: Vec<Site>,
}

impl ClauseCoverage {
    pub fn status(&self) -> Status {
        match (self.impl_sites.is_empty(), self.test_sites.is_empty()) {
            (false, false) => Status::Covered,
            (false, true) => Status::ImplOnly,
            (true, false) => Status::TestOnly,
            (true, true) => Status::Uncovered,
        }
    }
}

/// One spec's worth of clause coverage.
#[derive(Debug, Clone)]
pub struct SpecCoverage {
    pub id: String,
    pub title: String,
    pub url: String,
    pub clauses: Vec<ClauseCoverage>,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct Report {
    pub specs: Vec<SpecCoverage>,
    /// Annotation defects, including unknown-clause citations; sorted
    /// by (file, line).
    pub problems: Vec<Problem>,
    /// Total citations scanned (impl, test).
    pub cited: (usize, usize),
}

impl Report {
    /// Join `registry` and `citations`. Citations naming unregistered
    /// clauses become [`ProblemKind::UnknownClause`] problems.
    pub fn build(registry: &Registry, citations: &[Citation], problems: &[Problem]) -> Report {
        let mut sites: BTreeMap<&str, (Vec<Site>, Vec<Site>)> = BTreeMap::new();
        let mut problems: Vec<Problem> = problems.to_vec();
        let mut cited = (0usize, 0usize);
        for c in citations {
            if registry.clause(&c.clause).is_none() {
                problems.push(Problem {
                    file: c.file.clone(),
                    line: c.line,
                    kind: ProblemKind::UnknownClause,
                    detail: format!("citation of `{}`: no such clause in specs/", c.clause),
                });
                continue;
            }
            let entry = sites.entry(c.clause.as_str()).or_default();
            let site = Site {
                file: c.file.clone(),
                line: c.line,
            };
            match c.kind {
                CiteKind::Impl => {
                    cited.0 += 1;
                    entry.0.push(site);
                }
                CiteKind::Test => {
                    cited.1 += 1;
                    entry.1.push(site);
                }
            }
        }
        problems.sort_by(|a, b| (&a.file, a.line, &a.detail).cmp(&(&b.file, b.line, &b.detail)));
        let specs = registry
            .specs
            .iter()
            .map(|s| SpecCoverage {
                id: s.id.clone(),
                title: s.title.clone(),
                url: s.url.clone(),
                clauses: s
                    .clauses
                    .iter()
                    .map(|c| {
                        let (mut impl_sites, mut test_sites) =
                            sites.get(c.id.as_str()).cloned().unwrap_or_default();
                        impl_sites.sort();
                        test_sites.sort();
                        ClauseCoverage {
                            id: c.id.clone(),
                            level: c.level,
                            text: c.text.clone(),
                            impl_sites,
                            test_sites,
                        }
                    })
                    .collect(),
            })
            .collect();
        Report {
            specs,
            problems,
            cited,
        }
    }

    pub fn clauses(&self) -> impl Iterator<Item = &ClauseCoverage> {
        self.specs.iter().flat_map(|s| &s.clauses)
    }

    pub fn count(&self, level: Level) -> usize {
        self.clauses().filter(|c| c.level == level).count()
    }

    pub fn count_covered(&self, level: Level) -> usize {
        self.clauses()
            .filter(|c| c.level == level && c.status() == Status::Covered)
            .count()
    }

    /// Uncovered MUST clauses (the fatal kind of gap).
    pub fn uncovered_must(&self) -> Vec<&ClauseCoverage> {
        self.clauses()
            .filter(|c| c.level == Level::Must && c.status() != Status::Covered)
            .collect()
    }

    pub fn pass(&self) -> bool {
        self.problems.is_empty() && self.uncovered_must().is_empty()
    }

    pub fn exit_code(&self) -> i32 {
        if self.pass() {
            0
        } else {
            1
        }
    }

    /// The `speccheck summary` renderer: per-spec coverage table,
    /// totals, problems, verdict.
    pub fn render_summary(&self) -> String {
        let mut out = String::from("speccheck: spec-anchored compliance coverage\n\n");
        out.push_str("  spec      clauses  MUST  covered  impl-only  test-only  uncovered\n");
        let mut tot = [0usize; 6];
        for s in &self.specs {
            let counts = [
                s.clauses.len(),
                s.clauses.iter().filter(|c| c.level == Level::Must).count(),
                count_status(s, Status::Covered),
                count_status(s, Status::ImplOnly),
                count_status(s, Status::TestOnly),
                count_status(s, Status::Uncovered),
            ];
            for (t, c) in tot.iter_mut().zip(counts) {
                *t += c;
            }
            out.push_str(&format!(
                "  {:<10}{:>6}{:>6}{:>9}{:>11}{:>11}{:>11}\n",
                s.id, counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]
            ));
        }
        out.push_str(&format!(
            "  {:<10}{:>6}{:>6}{:>9}{:>11}{:>11}{:>11}\n\n",
            "total", tot[0], tot[1], tot[2], tot[3], tot[4], tot[5]
        ));
        out.push_str(&format!(
            "  citations: {} impl + {} test\n",
            self.cited.0, self.cited.1
        ));
        out.push_str(&format!(
            "  MUST coverage: {}/{}\n",
            self.count_covered(Level::Must),
            self.count(Level::Must)
        ));
        out.push_str(&format!("  problems: {}\n", self.problems.len()));
        for p in &self.problems {
            out.push_str(&format!("    {p}\n"));
        }
        if self.pass() {
            out.push_str(
                "speccheck: PASS — every MUST clause has an implementation and an enforcing test\n",
            );
        } else {
            out.push_str(&format!(
                "speccheck: FAIL — {} uncovered MUST clause(s), {} problem(s); run `speccheck uncovered`\n",
                self.uncovered_must().len(),
                self.problems.len()
            ));
        }
        out
    }

    /// The `speccheck uncovered` renderer: every clause that is not
    /// fully covered, with what is missing; MUST gaps are fatal,
    /// SHOULD/MAY gaps advisory.
    pub fn render_uncovered(&self) -> String {
        let mut out = String::from("speccheck: clauses without full impl+test coverage\n");
        let mut any = false;
        for c in self.clauses() {
            if c.status() == Status::Covered {
                continue;
            }
            any = true;
            let severity = if c.level == Level::Must {
                "FATAL"
            } else {
                "advisory"
            };
            let missing = match c.status() {
                Status::ImplOnly => "missing an enforcing test",
                Status::TestOnly => "missing an implementation citation",
                _ => "missing both implementation and test",
            };
            out.push_str(&format!(
                "  [{severity}] {} ({}) — {missing}\n    {}\n",
                c.id, c.level, c.text
            ));
        }
        if !any {
            out.push_str("  (none — every registered clause is cited from impl and tests)\n");
        }
        if !self.problems.is_empty() {
            out.push_str("speccheck: annotation problems\n");
            for p in &self.problems {
                out.push_str(&format!("  {p}\n"));
            }
        }
        out
    }

    /// The `speccheck json` renderer. Byte-stable: two runs over the
    /// same tree must produce identical bytes (CI double-runs and
    /// `cmp`s this output).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"speccheck\": {\n    \"specs\": [");
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"id\": \"{}\", \"title\": \"{}\", \"clauses\": [",
                json_escape(&s.id),
                json_escape(&s.title)
            ));
            for (j, c) in s.clauses.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"id\": \"{}\", \"level\": \"{}\", \"status\": \"{}\", \"impl\": [{}], \"test\": [{}]}}",
                    json_escape(&c.id),
                    c.level,
                    c.status().as_str(),
                    sites_json(&c.impl_sites),
                    sites_json(&c.test_sites)
                ));
            }
            if !s.clauses.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]}");
        }
        if !self.specs.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("],\n    \"problems\": [");
        for (i, p) in self.problems.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(&p.file),
                p.line,
                p.kind.as_str(),
                json_escape(&p.detail)
            ));
        }
        if !self.problems.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str(&format!(
            "],\n    \"must_total\": {},\n    \"must_covered\": {},\n    \"pass\": {}\n  }}\n}}\n",
            self.count(Level::Must),
            self.count_covered(Level::Must),
            self.pass()
        ));
        out
    }
}

fn count_status(s: &SpecCoverage, status: Status) -> usize {
    s.clauses.iter().filter(|c| c.status() == status).count()
}

fn sites_json(sites: &[Site]) -> String {
    sites
        .iter()
        .map(|s| {
            format!(
                "{{\"file\": \"{}\", \"line\": {}}}",
                json_escape(&s.file),
                s.line
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::parse_spec_file;

    fn registry() -> Registry {
        let mut reg = Registry::default();
        reg.specs.push(
            parse_spec_file(
                "toy.spec",
                "spec toy\ntitle Toy\nurl https://example.com\n\
                 clause toy:1:covered MUST\n  a\n\
                 clause toy:2:impl-only MUST\n  b\n\
                 clause toy:3:test-only MUST\n  c\n\
                 clause toy:4:uncovered MUST\n  d\n\
                 clause toy:5:advisory SHOULD\n  e\n",
            )
            .unwrap(),
        );
        reg
    }

    fn cite(clause: &str, kind: CiteKind, line: u32) -> Citation {
        Citation {
            file: "crates/tcp/src/x.rs".to_string(),
            line,
            clause: clause.to_string(),
            kind,
        }
    }

    #[test]
    fn statuses_and_exit_codes() {
        let reg = registry();
        let cites = vec![
            cite("toy:1:covered", CiteKind::Impl, 1),
            cite("toy:1:covered", CiteKind::Test, 2),
            cite("toy:2:impl-only", CiteKind::Impl, 3),
            cite("toy:3:test-only", CiteKind::Test, 4),
        ];
        let r = Report::build(&reg, &cites, &[]);
        let statuses: Vec<Status> = r.clauses().map(|c| c.status()).collect();
        assert_eq!(
            statuses,
            vec![
                Status::Covered,
                Status::ImplOnly,
                Status::TestOnly,
                Status::Uncovered,
                Status::Uncovered
            ]
        );
        // Three MUST gaps (the SHOULD gap is advisory) → exit 1.
        assert_eq!(r.uncovered_must().len(), 3);
        assert_eq!(r.exit_code(), 1);
        assert!(r.render_summary().contains("FAIL"));
        assert!(r.render_uncovered().contains("[advisory] toy:5:advisory"));
        assert!(r.render_uncovered().contains("[FATAL] toy:4:uncovered"));
    }

    #[test]
    fn full_coverage_passes_even_with_should_gaps() {
        let reg = registry();
        let mut cites = Vec::new();
        for (i, id) in [
            "toy:1:covered",
            "toy:2:impl-only",
            "toy:3:test-only",
            "toy:4:uncovered",
        ]
        .iter()
        .enumerate()
        {
            cites.push(cite(id, CiteKind::Impl, 2 * i as u32 + 1));
            cites.push(cite(id, CiteKind::Test, 2 * i as u32 + 2));
        }
        let r = Report::build(&reg, &cites, &[]);
        assert_eq!(r.exit_code(), 0, "SHOULD gap must not fail the build");
        assert!(r.render_summary().contains("PASS"));
        assert!(r
            .render_uncovered()
            .contains("[advisory] toy:5:advisory (SHOULD)"));
    }

    #[test]
    fn unknown_clause_citations_become_problems() {
        let reg = registry();
        let cites = vec![cite("toy:9:ghost", CiteKind::Impl, 7)];
        let r = Report::build(&reg, &cites, &[]);
        assert_eq!(r.problems.len(), 1);
        assert_eq!(r.problems[0].kind, ProblemKind::UnknownClause);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn json_is_deterministic_and_carries_sites() {
        let reg = registry();
        let cites = vec![
            cite("toy:1:covered", CiteKind::Impl, 10),
            cite("toy:1:covered", CiteKind::Test, 20),
        ];
        let r = Report::build(&reg, &cites, &[]);
        let a = r.render_json();
        let b = Report::build(&reg, &cites, &[]).render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"id\": \"toy:1:covered\""), "{a}");
        assert!(a.contains("\"status\": \"covered\""), "{a}");
        assert!(a.contains("\"line\": 10"), "{a}");
        assert!(a.contains("\"must_total\": 4"), "{a}");
        assert!(a.contains("\"pass\": false"), "{a}");
    }
}

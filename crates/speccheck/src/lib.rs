//! speccheck — spec-anchored compliance lint.
//!
//! Ties every MUST clause condensed from the RFCs and the IMC'17 paper
//! (registry under `specs/`, see [`registry`]) to the code that
//! implements it and the test that enforces it, via `//= spec:
//! <clause-id>` source annotations (see [`annotations`]). CI runs
//! `speccheck summary` and fails when a MUST clause lacks either side,
//! when an annotation cites a clause that does not exist, or when the
//! cited source line is gone (see [`coverage`]).
//!
//! Subcommands, in the tracectl/healthctl house style:
//!
//! - `summary` (default) — per-spec coverage table and verdict;
//! - `uncovered` — every clause missing impl or test, MUST gaps
//!   marked FATAL;
//! - `json` — byte-stable machine-readable report (CI double-runs it
//!   and `cmp`s the bytes).
//!
//! All subcommands take `--root <dir>` (default: the workspace root
//! containing this crate) and exit 0/1 on pass/fail; usage, I/O and
//! registry-parse errors exit 2.

pub mod annotations;
pub mod coverage;
pub mod registry;

use coverage::Report;
use std::path::{Path, PathBuf};

fn usage() -> String {
    [
        "usage: speccheck [summary|uncovered|json] [--root <dir>] [--json]",
        "  summary    per-spec coverage table and pass/fail verdict (default)",
        "  uncovered  clauses missing an impl or test citation; MUST gaps are FATAL",
        "  json       byte-stable JSON report",
        "  --root     workspace root holding specs/ and crates/ (default: this repo)",
        "  --json     alias for the json subcommand",
    ]
    .join("\n")
}

fn default_root() -> PathBuf {
    // crates/speccheck -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

/// Build the coverage report for the workspace at `root`.
pub fn report(root: &Path) -> Result<Report, String> {
    let reg = registry::load(root)?;
    let (citations, problems) = annotations::scan_workspace(root)?;
    Ok(Report::build(&reg, &citations, &problems))
}

/// Dispatch a full argv (without the program name). Returns the output
/// to print and the process exit code; `Err` is a usage/IO/registry
/// error whose message goes to stderr with exit code 2.
pub fn run(args: &[String]) -> Result<(String, i32), String> {
    let mut cmd: Option<&str> = None;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "summary" | "uncovered" | "json" => {
                if cmd.is_some() {
                    return Err(format!("more than one subcommand\n{}", usage()));
                }
                cmd = Some(a.as_str());
            }
            "--json" => cmd = Some("json"),
            "--root" => {
                let dir = it
                    .next()
                    .ok_or_else(|| format!("--root needs a directory\n{}", usage()))?;
                root = PathBuf::from(dir);
            }
            other => {
                if let Some(dir) = other.strip_prefix("--root=") {
                    root = PathBuf::from(dir);
                } else {
                    return Err(format!("unknown argument {other}\n{}", usage()));
                }
            }
        }
    }
    let report = report(&root)?;
    let out = match cmd.unwrap_or("summary") {
        "uncovered" => report.render_uncovered(),
        "json" => report.render_json(),
        _ => report.render_summary(),
    };
    Ok((out, report.exit_code()))
}

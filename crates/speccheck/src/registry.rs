//! The machine-readable spec registry under `specs/`.
//!
//! Each `specs/<spec-id>.spec` file declares one spec and its clauses
//! in a line-oriented, dependency-free format:
//!
//! ```text
//! # comment
//! spec rfc5681
//! title TCP Congestion Control
//! url https://www.rfc-editor.org/rfc/rfc5681
//!
//! clause rfc5681:3.2:dupack-threshold MUST
//!   The arrival of three duplicate ACKs is taken as an indication that
//!   a segment has been lost; the sender performs fast retransmit.
//! ```
//!
//! Rules enforced at parse time (violations are *registry* errors and
//! exit 2 — a broken registry must never read as "all covered"):
//!
//! - exactly one `spec` per file, with `title` and `url`;
//! - clause ids have the shape `<spec-id>:<section>:<slug>`, are
//!   prefixed by their own spec id, and are globally unique;
//! - the requirement level is `MUST`, `SHOULD` or `MAY`;
//! - every clause carries quoted/condensed requirement text (indented
//!   continuation lines, two or more spaces).

use std::fmt;
use std::path::Path;

/// RFC 2119 requirement level. Only MUST clauses gate CI; SHOULD/MAY
/// gaps are reported as advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Must,
    Should,
    May,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Must => "MUST",
            Level::Should => "SHOULD",
            Level::May => "MAY",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "MUST" => Some(Level::Must),
            "SHOULD" => Some(Level::Should),
            "MAY" => Some(Level::May),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered requirement clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Stable id: `<spec-id>:<section>:<slug>`.
    pub id: String,
    pub level: Level,
    /// Condensed requirement text (joined continuation lines).
    pub text: String,
}

/// One spec file: a document plus its clauses in declaration order
/// (which follows the document's own section order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    pub id: String,
    pub title: String,
    pub url: String,
    pub clauses: Vec<Clause>,
}

/// All specs, sorted by spec id (load order is file-name order, which
/// is already sorted, but sorting again keeps the invariant local).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub specs: Vec<Spec>,
}

impl Registry {
    /// Look up a clause by id.
    pub fn clause(&self, id: &str) -> Option<(&Spec, &Clause)> {
        self.specs
            .iter()
            .find_map(|s| s.clauses.iter().find(|c| c.id == id).map(|c| (s, c)))
    }

    pub fn clause_count(&self) -> usize {
        self.specs.iter().map(|s| s.clauses.len()).sum()
    }

    pub fn count_level(&self, level: Level) -> usize {
        self.specs
            .iter()
            .flat_map(|s| &s.clauses)
            .filter(|c| c.level == level)
            .count()
    }
}

/// Parse one `.spec` file. `name` is used in error messages only.
pub fn parse_spec_file(name: &str, text: &str) -> Result<Spec, String> {
    let err = |line: usize, msg: &str| format!("{name}:{}: {msg}", line + 1);
    let mut spec: Option<Spec> = None;
    let mut open_clause = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('#') {
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if line.starts_with("  ") {
            // Continuation of the current clause's quoted text.
            let spec = spec
                .as_mut()
                .ok_or_else(|| err(i, "indented text before any `spec` line"))?;
            if !open_clause {
                return Err(err(i, "indented text outside a `clause` block"));
            }
            let clause = spec.clauses.last_mut().expect("open_clause implies one");
            if !clause.text.is_empty() {
                clause.text.push(' ');
            }
            clause.text.push_str(line.trim());
            continue;
        }
        open_clause = false;
        let (keyword, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "spec" => {
                if spec.is_some() {
                    return Err(err(i, "more than one `spec` per file"));
                }
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(err(i, "`spec` takes a single id"));
                }
                spec = Some(Spec {
                    id: rest.to_string(),
                    title: String::new(),
                    url: String::new(),
                    clauses: Vec::new(),
                });
            }
            "title" | "url" => {
                let spec = spec
                    .as_mut()
                    .ok_or_else(|| err(i, "`title`/`url` before `spec`"))?;
                if rest.is_empty() {
                    return Err(err(i, "empty `title`/`url`"));
                }
                if keyword == "title" {
                    spec.title = rest.to_string();
                } else {
                    spec.url = rest.to_string();
                }
            }
            "clause" => {
                let spec = spec
                    .as_mut()
                    .ok_or_else(|| err(i, "`clause` before `spec`"))?;
                let (id, level) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(i, "expected `clause <id> <MUST|SHOULD|MAY>`"))?;
                let level = Level::parse(level.trim())
                    .ok_or_else(|| err(i, "level must be MUST, SHOULD or MAY"))?;
                if !id.starts_with(&format!("{}:", spec.id)) {
                    return Err(err(i, "clause id must be prefixed by its spec id"));
                }
                let segments: Vec<&str> = id.split(':').collect();
                if segments.len() != 3 || segments.iter().any(|s| s.is_empty()) {
                    return Err(err(i, "clause id must be `<spec>:<section>:<slug>`"));
                }
                if spec.clauses.iter().any(|c| c.id == id) {
                    return Err(err(i, "duplicate clause id"));
                }
                spec.clauses.push(Clause {
                    id: id.to_string(),
                    level,
                    text: String::new(),
                });
                open_clause = true;
            }
            other => {
                return Err(err(i, &format!("unknown keyword `{other}`")));
            }
        }
    }
    let spec = spec.ok_or_else(|| format!("{name}: no `spec` line"))?;
    if spec.title.is_empty() {
        return Err(format!("{name}: spec `{}` has no title", spec.id));
    }
    if spec.clauses.is_empty() {
        return Err(format!("{name}: spec `{}` has no clauses", spec.id));
    }
    if let Some(c) = spec.clauses.iter().find(|c| c.text.is_empty()) {
        return Err(format!("{name}: clause `{}` has no quoted text", c.id));
    }
    Ok(spec)
}

/// Load every `specs/*.spec` under the workspace root. Duplicate clause
/// ids across files and duplicate spec ids are errors.
pub fn load(root: &Path) -> Result<Registry, String> {
    let dir = root.join("specs");
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "spec"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .spec files under {}", dir.display()));
    }
    let mut reg = Registry::default();
    for p in paths {
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        let text =
            std::fs::read_to_string(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let spec = parse_spec_file(&name, &text)?;
        if reg.specs.iter().any(|s| s.id == spec.id) {
            return Err(format!("{name}: duplicate spec id `{}`", spec.id));
        }
        for c in &spec.clauses {
            if reg.clause(&c.id).is_some() {
                return Err(format!("{name}: clause `{}` already registered", c.id));
            }
        }
        reg.specs.push(spec);
    }
    reg.specs.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# condensed from the RFC
spec toy
title A toy spec
url https://example.com/toy

clause toy:1:first MUST
  The first requirement,
  continued on a second line.

clause toy:2:second SHOULD
  The second requirement.
";

    #[test]
    fn parses_a_well_formed_file() {
        let s = parse_spec_file("toy.spec", GOOD).expect("parse");
        assert_eq!(s.id, "toy");
        assert_eq!(s.title, "A toy spec");
        assert_eq!(s.clauses.len(), 2);
        assert_eq!(s.clauses[0].id, "toy:1:first");
        assert_eq!(s.clauses[0].level, Level::Must);
        assert_eq!(
            s.clauses[0].text,
            "The first requirement, continued on a second line."
        );
        assert_eq!(s.clauses[1].level, Level::Should);
    }

    #[test]
    fn rejects_malformed_files() {
        let cases: &[(&str, &str)] = &[
            ("clause toy:1:x MUST\n  t\n", "before `spec`"),
            (
                "spec toy\ntitle T\nclause other:1:x MUST\n  t\n",
                "prefixed",
            ),
            ("spec toy\ntitle T\nclause toy:1 MUST\n  t\n", "<slug>"),
            (
                "spec toy\ntitle T\nclause toy:1:x WILL\n  t\n",
                "MUST, SHOULD or MAY",
            ),
            (
                "spec toy\ntitle T\nclause toy:1:x MUST\n  t\nclause toy:1:x MUST\n  t\n",
                "duplicate clause id",
            ),
            ("spec toy\ntitle T\n  stray text\n", "outside a `clause`"),
            ("spec toy\ntitle T\nclause toy:1:x MUST\n", "no quoted text"),
            ("spec toy\ntitle T\nbogus keyword\n", "unknown keyword"),
            ("spec toy\nclause toy:1:x MUST\n  t\n", "no title"),
            ("title T\n", "before `spec`"),
        ];
        for (src, needle) in cases {
            let e = parse_spec_file("f.spec", src).expect_err(src);
            assert!(e.contains(needle), "error {e:?} should mention {needle:?}");
        }
    }

    #[test]
    fn registry_lookup_and_counts() {
        let mut reg = Registry::default();
        reg.specs.push(parse_spec_file("toy.spec", GOOD).unwrap());
        assert!(reg.clause("toy:1:first").is_some());
        assert!(reg.clause("toy:9:nope").is_none());
        assert_eq!(reg.clause_count(), 2);
        assert_eq!(reg.count_level(Level::Must), 1);
        assert_eq!(reg.count_level(Level::Should), 1);
        assert_eq!(reg.count_level(Level::May), 0);
    }
}

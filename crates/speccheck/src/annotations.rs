//! Scanning `//= spec: <clause-id>` citations out of workspace source.
//!
//! Citations ride simcheck's lexer: directives come from *comments
//! only*, so a clause id inside a string literal or doc comment can
//! never fabricate coverage. Each citation is classified as an
//! *implementation* citation or a *test* citation using the shared
//! test-context detection ([`simcheck::context`]): citations inside
//! `#[cfg(test)]` / `#[test]` regions, or anywhere in `tests/` /
//! `benches/` files, enforce; everything else implements.
//!
//! A citation must stay *anchored*: the directive's own line holds code
//! (trailing-comment form), or the next line is non-blank (the cited
//! statement, another directive of the same block, or at minimum a
//! comment). When the code under a citation is deleted — leaving the
//! directive hanging over a blank line or EOF — speccheck fails,
//! which is the "cited source line no longer exists" contract.

use simcheck::context::{in_test_context, is_test_path, test_line_ranges};
use simcheck::lexer::lex;
use std::collections::BTreeSet;
use std::path::Path;

/// Whether a citation sits in implementation or test code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CiteKind {
    Impl,
    Test,
}

impl CiteKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CiteKind::Impl => "impl",
            CiteKind::Test => "test",
        }
    }
}

/// One `//= spec: <clause-id>` citation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Citation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    pub clause: String,
    pub kind: CiteKind,
}

/// A defect in the annotations themselves (as opposed to a coverage
/// gap). Every problem is fatal: exit 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    pub file: String,
    pub line: u32,
    pub kind: ProblemKind,
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// `//=` directive that is not `spec: <clause-id>`.
    Malformed,
    /// Citation whose next source line is blank or missing.
    Unanchored,
    /// Citation naming a clause id absent from the registry.
    UnknownClause,
}

impl ProblemKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ProblemKind::Malformed => "malformed-directive",
            ProblemKind::Unanchored => "unanchored-citation",
            ProblemKind::UnknownClause => "unknown-clause",
        }
    }
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.kind.as_str(),
            self.detail
        )
    }
}

/// Scan one source string as if it were `rel_path` in the workspace.
pub fn scan_file(rel_path: &str, src: &str) -> (Vec<Citation>, Vec<Problem>) {
    let lexed = lex(src);
    let ranges = test_line_ranges(&lexed.tokens);
    let path_is_test = is_test_path(rel_path);
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let lines: Vec<&str> = src.lines().collect();

    let mut citations = Vec::new();
    let mut problems = Vec::new();
    for d in &lexed.directives {
        let clause = match d.text.strip_prefix("spec:") {
            Some(rest) => rest.trim(),
            None => {
                problems.push(Problem {
                    file: rel_path.to_string(),
                    line: d.line,
                    kind: ProblemKind::Malformed,
                    detail: format!(
                        "unrecognized directive `//= {}`; expected `//= spec: <clause-id>`",
                        d.text
                    ),
                });
                continue;
            }
        };
        if clause.is_empty() || clause.contains(char::is_whitespace) {
            problems.push(Problem {
                file: rel_path.to_string(),
                line: d.line,
                kind: ProblemKind::Malformed,
                detail: format!("`//= spec:` needs a single clause id, got `{clause}`"),
            });
            continue;
        }
        // Anchor rule: code on the directive's own line (trailing
        // comment), or a non-blank next line.
        let next_nonblank = lines
            .get(d.line as usize) // 0-based index of the *next* line
            .is_some_and(|l| !l.trim().is_empty());
        if !token_lines.contains(&d.line) && !next_nonblank {
            problems.push(Problem {
                file: rel_path.to_string(),
                line: d.line,
                kind: ProblemKind::Unanchored,
                detail: format!(
                    "citation of `{clause}` hangs over a blank line or EOF; the cited code is gone"
                ),
            });
            continue;
        }
        let kind = if path_is_test || in_test_context(&ranges, d.line) {
            CiteKind::Test
        } else {
            CiteKind::Impl
        };
        citations.push(Citation {
            file: rel_path.to_string(),
            line: d.line,
            clause: clause.to_string(),
            kind,
        });
    }
    (citations, problems)
}

/// Scan every workspace source file (same walk as simcheck: `crates/`,
/// `src/`, `tests/`, `examples/`, `benches/`, skipping `target` and
/// fixture corpora), in sorted path order.
pub fn scan_workspace(root: &Path) -> Result<(Vec<Citation>, Vec<Problem>), String> {
    let files = simcheck::workspace::source_files(root)
        .map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let mut citations = Vec::new();
    let mut problems = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let (c, p) = scan_file(&rel.to_string_lossy().replace('\\', "/"), &src);
        citations.extend(c);
        problems.extend(p);
    }
    Ok((citations, problems))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impl_and_test_citations_are_classified() {
        let src = "\
//= spec: rfc5681:3.2:dupack-threshold
fn fast_retransmit() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        //= spec: rfc5681:3.2:dupack-threshold
        assert!(true);
    }
}
";
        let (cites, probs) = scan_file("crates/tcp/src/sender.rs", src);
        assert_eq!(probs, vec![]);
        assert_eq!(cites.len(), 2);
        assert_eq!(cites[0].kind, CiteKind::Impl);
        assert_eq!(cites[0].line, 1);
        assert_eq!(cites[1].kind, CiteKind::Test);
        assert_eq!(cites[0].clause, "rfc5681:3.2:dupack-threshold");
    }

    #[test]
    fn tests_dir_files_are_test_citations() {
        let src = "//= spec: toy:1:x\nfn check() {}\n";
        let (cites, _) = scan_file("crates/tcp/tests/integration.rs", src);
        assert_eq!(cites[0].kind, CiteKind::Test);
        let (cites, _) = scan_file("tests/end_to_end.rs", src);
        assert_eq!(cites[0].kind, CiteKind::Test);
    }

    #[test]
    fn stacked_directives_anchor_through_each_other() {
        let src = "//= spec: toy:1:a\n//= spec: toy:1:b\nfn f() {}\n";
        let (cites, probs) = scan_file("crates/tcp/src/x.rs", src);
        assert_eq!(probs, vec![]);
        assert_eq!(cites.len(), 2);
    }

    #[test]
    fn unanchored_citations_are_problems() {
        // Blank line below.
        let (c, p) = scan_file("crates/tcp/src/x.rs", "//= spec: toy:1:a\n\nfn f() {}\n");
        assert_eq!(c, vec![]);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].kind, ProblemKind::Unanchored);
        // EOF below.
        let (c, p) = scan_file("crates/tcp/src/x.rs", "fn f() {}\n//= spec: toy:1:a\n");
        assert_eq!(c, vec![]);
        assert_eq!(p[0].kind, ProblemKind::Unanchored);
        // Trailing-comment form anchors on its own line.
        let (c, p) = scan_file("crates/tcp/src/x.rs", "fn f() {} //= spec: toy:1:a\n");
        assert_eq!(p, vec![]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn malformed_directives_are_problems() {
        let (c, p) = scan_file("crates/tcp/src/x.rs", "//= cite: toy:1:a\nfn f() {}\n");
        assert_eq!(c, vec![]);
        assert_eq!(p[0].kind, ProblemKind::Malformed);
        let (c, p) = scan_file("crates/tcp/src/x.rs", "//= spec: two ids\nfn f() {}\n");
        assert_eq!(c, vec![]);
        assert_eq!(p[0].kind, ProblemKind::Malformed);
    }

    #[test]
    fn strings_and_doc_comments_cannot_fabricate_citations() {
        let src = "let s = \"//= spec: toy:1:a\";\n/// //= spec: toy:1:b\nfn f() {}\n";
        let (c, p) = scan_file("crates/tcp/src/x.rs", src);
        assert_eq!(c, vec![]);
        assert_eq!(p, vec![]);
    }
}

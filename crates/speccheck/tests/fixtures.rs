//! Fixture tests for speccheck: coverage statuses end to end, binary
//! exit codes, and the byte-stable JSON contract CI relies on.

use speccheck::coverage::Status;
use speccheck::registry::Level;

/// A registry + sources fixture written to a temp workspace; `tag`
/// keeps concurrent tests from sharing a directory.
fn temp_workspace(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("speccheck-fixture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("specs")).expect("mkdir specs");
    std::fs::create_dir_all(dir.join("crates/tcp/src")).expect("mkdir src");
    dir
}

const TOY_SPEC: &str = "\
spec toy
title A toy protocol
url https://example.com/toy

clause toy:1:covered MUST
  Fully covered clause.
clause toy:2:impl-only MUST
  Clause with an implementation but no enforcing test.
clause toy:3:test-only SHOULD
  Clause with a test but no implementation citation.
clause toy:4:uncovered SHOULD
  Clause nobody cites.
";

/// Sources giving toy:1 full coverage, toy:2 impl-only, toy:3
/// test-only. A SHOULD gap must not fail; a MUST gap must.
const LIB_RS: &str = "\
//= spec: toy:1:covered
pub fn covered() {}

//= spec: toy:2:impl-only
pub fn impl_only() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        //= spec: toy:1:covered
        //= spec: toy:3:test-only
        super::covered();
    }
}
";

fn write_fixture(dir: &std::path::Path, spec: &str, lib: &str) {
    std::fs::write(dir.join("specs/toy.spec"), spec).expect("write spec");
    std::fs::write(dir.join("crates/tcp/src/lib.rs"), lib).expect("write lib");
}

fn run(dir: &std::path::Path, args: &[&str]) -> (String, String, i32) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_speccheck"))
        .args(args)
        .args(["--root", dir.to_str().unwrap()])
        .output()
        .expect("run speccheck");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn statuses_cover_the_four_quadrants() {
    let dir = temp_workspace("quadrants");
    write_fixture(&dir, TOY_SPEC, LIB_RS);
    let report = speccheck::report(&dir).expect("report");
    let statuses: Vec<(String, Status)> = report
        .clauses()
        .map(|c| (c.id.clone(), c.status()))
        .collect();
    assert_eq!(
        statuses,
        vec![
            ("toy:1:covered".to_string(), Status::Covered),
            ("toy:2:impl-only".to_string(), Status::ImplOnly),
            ("toy:3:test-only".to_string(), Status::TestOnly),
            ("toy:4:uncovered".to_string(), Status::Uncovered),
        ]
    );
    // toy:2 is the only MUST gap.
    assert_eq!(report.uncovered_must().len(), 1);
    assert_eq!(report.exit_code(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_fails_on_uncovered_must_and_passes_once_tested() {
    let dir = temp_workspace("must-gap");
    write_fixture(&dir, TOY_SPEC, LIB_RS);
    let (out, _, code) = run(&dir, &["summary"]);
    assert_eq!(code, 1, "uncovered MUST must exit 1:\n{out}");
    assert!(out.contains("FAIL"), "{out}");
    let (out, _, code) = run(&dir, &["uncovered"]);
    assert_eq!(code, 1);
    assert!(out.contains("[FATAL] toy:2:impl-only"), "{out}");
    assert!(out.contains("[advisory] toy:4:uncovered"), "{out}");

    // Add the missing enforcing test: the MUST gap closes, and the
    // remaining SHOULD gaps are advisory — the tree passes.
    let fixed = LIB_RS.replace(
        "        //= spec: toy:1:covered\n",
        "        //= spec: toy:1:covered\n        //= spec: toy:2:impl-only\n",
    );
    write_fixture(&dir, TOY_SPEC, &fixed);
    let (out, _, code) = run(&dir, &["summary"]);
    assert_eq!(code, 0, "SHOULD gaps are advisory:\n{out}");
    assert!(out.contains("PASS"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_fails_on_dangling_and_unanchored_citations() {
    // A citation of a clause that is not in the registry.
    let dir = temp_workspace("dangling");
    let full = LIB_RS.replace(
        "        //= spec: toy:1:covered\n",
        "        //= spec: toy:1:covered\n        //= spec: toy:2:impl-only\n",
    );
    let dangling = format!("{full}\n//= spec: toy:9:ghost\npub fn ghost() {{}}\n");
    write_fixture(&dir, TOY_SPEC, &dangling);
    let (out, _, code) = run(&dir, &["summary"]);
    assert_eq!(code, 1, "dangling citation must fail:\n{out}");
    assert!(out.contains("unknown-clause"), "{out}");
    assert!(out.contains("toy:9:ghost"), "{out}");

    // A citation hanging over a blank line (the cited code was
    // deleted): also fatal.
    let unanchored = format!("{full}\n//= spec: toy:1:covered\n\npub fn moved() {{}}\n");
    write_fixture(&dir, TOY_SPEC, &unanchored);
    let (out, _, code) = run(&dir, &["summary"]);
    assert_eq!(code, 1, "unanchored citation must fail:\n{out}");
    assert!(out.contains("unanchored-citation"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn broken_registry_is_exit_2_not_all_covered() {
    let dir = temp_workspace("bad-registry");
    write_fixture(&dir, "spec toy\nclause toy:1:x MUST\n  t\n", LIB_RS);
    let (_, err, code) = run(&dir, &["summary"]);
    assert_eq!(code, 2, "registry parse error is a usage-class failure");
    assert!(err.contains("no title"), "{err}");
    // So is a missing specs/ directory.
    let empty = temp_workspace("no-specs");
    std::fs::remove_dir_all(empty.join("specs")).expect("rm specs");
    let (_, err, code) = run(&empty, &["summary"]);
    assert_eq!(code, 2);
    assert!(err.contains("specs"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn json_is_byte_identical_across_runs() {
    let dir = temp_workspace("json-stable");
    write_fixture(&dir, TOY_SPEC, LIB_RS);
    let (a, _, code_a) = run(&dir, &["json"]);
    let (b, _, code_b) = run(&dir, &["--json"]);
    assert_eq!(code_a, 1);
    assert_eq!(code_b, 1, "--json is an alias for the json subcommand");
    assert_eq!(a.as_bytes(), b.as_bytes(), "JSON must be byte-stable");
    assert!(a.contains("\"status\": \"impl-only\""), "{a}");
    assert!(a.contains("\"must_total\": 2"), "{a}");
    assert!(a.contains("\"pass\": false"), "{a}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed tree itself must pass with full MUST coverage — this
/// is the regression test that keeps the seed corpus annotated.
#[test]
fn committed_workspace_has_full_must_coverage() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("speccheck lives at <ws>/crates/speccheck")
        .to_path_buf();
    let report = speccheck::report(&root).expect("workspace report");
    assert!(
        report.problems.is_empty(),
        "annotation problems:\n{}",
        report
            .problems
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let uncovered: Vec<&str> = report
        .uncovered_must()
        .iter()
        .map(|c| c.id.as_str())
        .collect();
    assert_eq!(uncovered, Vec::<&str>::new(), "uncovered MUST clauses");
    assert!(
        report.count(Level::Must) >= 25,
        "expected ≥ 25 MUST clauses, have {}",
        report.count(Level::Must)
    );
    assert_eq!(report.exit_code(), 0);
}

use mac80211::protection::Protection;
use netsim::testbed::{Testbed, TestbedConfig};
use sim::SimDuration;
fn main() {
    for (pool, prot, pname) in [
        (1600usize, Protection::RtsCts, "rts"),
        (800, Protection::RtsCts, "rts"),
        (800, Protection::None, "none"),
        (500, Protection::RtsCts, "rts"),
    ] {
        let run = |fa1: bool, fa2: bool| {
            Testbed::new(TestbedConfig {
                n_aps: 2,
                clients_per_ap: 10,
                fastack: vec![fa1, fa2],
                seed: 1818,
                ap_buffer_pool_frames: pool,
                protection: prot,
                ..TestbedConfig::default()
            })
            .run(SimDuration::from_secs(5))
        };
        let bb = run(false, false);
        let bf = run(false, true);
        let ff = run(true, true);
        println!(
            "pool={pool} prot={pname}: bb={:.0} bf={:.0}({:.0}+{:.0}) ff={:.0} gain={:+.0}%",
            bb.total_mbps(),
            bf.total_mbps(),
            bf.ap_mbps[0],
            bf.ap_mbps[1],
            ff.total_mbps(),
            (ff.total_mbps() / bb.total_mbps() - 1.0) * 100.0
        );
    }
}

//! Fleet- and network-scale deployment synthesis.
//!
//! Produces (a) fleet-wide channel-utilization samples matching the
//! paper's Fig. 2 regimes, (b) per-network planner views
//! ([`chanassign::NetworkView`]) built from a physical [`Topology`] plus
//! client load, and (c) the UNet / MNet deployment profiles used in the
//! §4.6 evaluation.

use crate::population::{sample_width_config, ClientCaps, PopulationProfile};
use crate::topology::{self, Topology};
use chanassign::model::{ApLoad, ApReport, NetworkView};
use phy80211::channels::{all_channels, Band, Channel, Width, US_2_4GHZ_NON_OVERLAPPING};
use sim::Rng;
use std::collections::BTreeMap;

/// A clipped-lognormal utilization distribution with a controlled median.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationProfile {
    pub median: f64,
    /// Log-space sigma (spread).
    pub sigma: f64,
}

impl UtilizationProfile {
    /// Fleet 2.4 GHz (Fig. 2: median 20 %).
    pub const FLEET_2_4: UtilizationProfile = UtilizationProfile {
        median: 0.20,
        sigma: 0.8,
    };
    /// Fleet 5 GHz (median 3 %).
    pub const FLEET_5: UtilizationProfile = UtilizationProfile {
        median: 0.03,
        sigma: 1.0,
    };
    /// Meraki HQ office 2.4 GHz (median 82 %).
    pub const HQ_2_4: UtilizationProfile = UtilizationProfile {
        median: 0.82,
        sigma: 0.25,
    };
    /// Meraki HQ office 5 GHz (median 23 %).
    pub const HQ_5: UtilizationProfile = UtilizationProfile {
        median: 0.23,
        sigma: 0.6,
    };

    /// Draw one utilization sample in [0, 1].
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.median * (self.sigma * rng.standard_normal()).exp()).clamp(0.0, 1.0)
    }
}

/// Client-count distribution per AP, shaped to the paper's §3.2.3
/// density buckets (33 % ≤ 5, 22 % 6–10, 20 % 11–20, 25 % ≥ 21).
pub fn sample_client_count(rng: &mut Rng) -> usize {
    let x = rng.f64();
    if x < 0.33 {
        rng.range_inclusive(0, 5) as usize
    } else if x < 0.55 {
        rng.range_inclusive(6, 10) as usize
    } else if x < 0.75 {
        rng.range_inclusive(11, 20) as usize
    } else {
        // Heavy tail: 21 up to a few hundred (paper max: 338).
        let t = rng.f64();
        (21.0 + 320.0 * t * t * t) as usize
    }
}

/// Options for building a planner view from a topology.
#[derive(Debug, Clone)]
pub struct ViewOptions {
    pub population: PopulationProfile,
    pub external_busy: UtilizationProfile,
    /// Fraction of 20 MHz channels carrying any external energy.
    pub external_presence: f64,
    pub dfs_certified: bool,
    pub seed_channels: SeedChannels,
}

/// How the pre-plan ("current") channels are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedChannels {
    /// Everyone on one default channel (fresh out-of-box deployment).
    AllDefault,
    /// Uniformly random legal channels.
    Random,
}

impl Default for ViewOptions {
    fn default() -> Self {
        ViewOptions {
            population: PopulationProfile::Y2017,
            external_busy: UtilizationProfile::FLEET_5,
            external_presence: 0.35,
            dfs_certified: true,
            seed_channels: SeedChannels::Random,
        }
    }
}

/// Build a planner view from a physical topology: distributes clients,
/// draws external utilization per channel, seeds current assignments.
/// Also returns the per-AP client capability lists (used by the
/// bit-rate-efficiency evaluation).
pub fn to_view(
    topo: &Topology,
    opts: &ViewOptions,
    rng: &mut Rng,
) -> (NetworkView, Vec<Vec<ClientCaps>>) {
    let n = topo.len();
    let channel_pool: Vec<Channel> = match topo.band {
        Band::Band2_4 => US_2_4GHZ_NON_OVERLAPPING
            .iter()
            .map(|&c| Channel::two4(c))
            .collect(),
        Band::Band5 => all_channels(Band::Band5, Width::W20),
    };
    let default_channel = channel_pool[0];

    let mut aps = Vec::with_capacity(n);
    let mut caps_per_ap = Vec::with_capacity(n);
    for i in 0..n {
        let n_clients = sample_client_count(rng);
        let caps: Vec<ClientCaps> = (0..n_clients)
            .map(|_| opts.population.sample(rng))
            .filter(|c| topo.band == Band::Band2_4 || c.five_ghz)
            .collect();
        // load(b): clients bucketed by max width, weighted by a usage
        // factor (heavier for wider-capable devices, matching the
        // observation that 11ac devices move more data).
        let mut by_width: BTreeMap<Width, f64> = BTreeMap::new();
        for c in &caps {
            let w = if topo.band == Band::Band2_4 {
                Width::W20
            } else {
                c.max_width
            };
            let usage = 0.5 + rng.exponential(0.8);
            *by_width.entry(w).or_insert(0.0) += usage;
        }
        let load = ApLoad {
            by_width: by_width.into_iter().collect(),
        };

        let mut external_busy = BTreeMap::new();
        let mut quality = BTreeMap::new();
        for ch in &channel_pool {
            if rng.chance(opts.external_presence) {
                external_busy.insert(ch.primary, opts.external_busy.sample(rng));
            }
            if rng.chance(0.1) {
                // Occasional non-WiFi interference (microwaves, radar
                // remnants): degraded quality.
                quality.insert(ch.primary, rng.uniform(0.5, 0.95));
            }
        }

        let current = match opts.seed_channels {
            SeedChannels::AllDefault => default_channel,
            SeedChannels::Random => channel_pool[rng.below(channel_pool.len() as u64) as usize],
        };
        let max_width = if topo.band == Band::Band2_4 {
            Width::W20
        } else {
            sample_width_config(n, rng)
        };

        aps.push(ApReport {
            neighbors: topo.audible[i].clone(),
            external_busy,
            quality,
            load,
            max_width,
            dfs_certified: opts.dfs_certified,
            has_clients: !caps.is_empty(),
            current,
        });
        caps_per_ap.push(caps);
    }
    (
        NetworkView {
            band: topo.band,
            aps,
        },
        caps_per_ap,
    )
}

/// Build a planner view from *scanned* data instead of oracle truth:
/// the measure→plan loop as deployed. Busy estimates and the neighbor
/// graph come from [`crate::scanner`] reports (imperfect: sampling noise,
/// missed beacons); load and capability data still come from the AP's
/// own association table (which it knows exactly).
pub fn view_from_scans(
    topo: &Topology,
    oracle: &NetworkView,
    scans: &[crate::scanner::ScanReport],
) -> NetworkView {
    assert_eq!(topo.len(), scans.len());
    let aps = (0..topo.len())
        .map(|i| {
            let mut ap = oracle.aps[i].clone();
            // Neighbors: whoever the scanning radio actually heard.
            ap.neighbors = scans[i].neighbors();
            // External busy: scanned estimates, minus what in-network
            // neighbors account for (the backend correlates BSSIDs; we
            // keep the raw estimate, which upper-bounds external energy).
            ap.external_busy = scans[i]
                .observations
                .iter()
                .filter(|o| o.busy > 0.02)
                .map(|o| (o.channel, o.busy))
                .collect();
            ap
        })
        .collect();
    NetworkView {
        band: topo.band,
        aps,
    }
}

/// A named deployment profile from the paper's §4.6.1 evaluation.
#[derive(Debug, Clone)]
pub struct DeploymentProfile {
    pub name: &'static str,
    pub n_aps: usize,
    pub area_m: (f64, f64),
    /// Daily active users.
    pub daily_users: usize,
    /// Uplink capacity in Gbps (None = effectively unlimited). The paper:
    /// UNet's usage "is limited by the network uplink setting most of
    /// the time"; MNet's is not.
    pub uplink_gbps: Option<f64>,
}

impl DeploymentProfile {
    /// UNet: university campus, ≈600 APs, 40 000 daily users,
    /// uplink-limited.
    pub const UNET: DeploymentProfile = DeploymentProfile {
        name: "UNet",
        n_aps: 600,
        area_m: (800.0, 500.0),
        daily_users: 40_000,
        uplink_gbps: Some(1.0),
    };

    /// MNet: national museum, ≈300 APs, 10 000 daily users, not
    /// uplink-limited.
    pub const MNET: DeploymentProfile = DeploymentProfile {
        name: "MNet",
        n_aps: 300,
        area_m: (400.0, 300.0),
        daily_users: 10_000,
        uplink_gbps: None,
    };

    /// Build the physical topology for this profile.
    pub fn topology(&self, band: Band, rng: &mut Rng) -> Topology {
        topology::random_area(self.n_aps, self.area_m.0, self.area_m.1, band, rng)
    }
}

/// One synthetic fleet network's utilization samples for Fig. 2.
pub fn fleet_utilization_samples(
    n_networks: usize,
    profile_2_4: UtilizationProfile,
    profile_5: UtilizationProfile,
    rng: &mut Rng,
) -> (Vec<f64>, Vec<f64>) {
    let mut u24 = Vec::new();
    let mut u5 = Vec::new();
    for _ in 0..n_networks {
        // Networks with ≥ 10 APs, per the paper's filter.
        let n_aps = rng.range_inclusive(10, 80) as usize;
        for _ in 0..n_aps {
            u24.push(profile_2_4.sample(rng));
            u5.push(profile_5.sample(rng));
        }
    }
    (u24, u5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::stats::median;

    #[test]
    fn utilization_profiles_hit_medians() {
        let mut rng = Rng::new(1);
        for (p, want) in [
            (UtilizationProfile::FLEET_2_4, 0.20),
            (UtilizationProfile::FLEET_5, 0.03),
            (UtilizationProfile::HQ_2_4, 0.82),
            (UtilizationProfile::HQ_5, 0.23),
        ] {
            let xs: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng)).collect();
            let m = median(&xs).unwrap();
            assert!(
                (m - want).abs() < want * 0.1 + 0.01,
                "median {m} want {want}"
            );
            assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn client_density_buckets_match_paper() {
        let mut rng = Rng::new(2);
        let n = 50_000;
        let counts: Vec<usize> = (0..n).map(|_| sample_client_count(&mut rng)).collect();
        let frac = |lo: usize, hi: usize| {
            counts.iter().filter(|&&c| c >= lo && c <= hi).count() as f64 / n as f64
        };
        assert!((frac(0, 5) - 0.33).abs() < 0.02);
        assert!((frac(6, 10) - 0.22).abs() < 0.02);
        assert!((frac(11, 20) - 0.20).abs() < 0.02);
        assert!((frac(21, usize::MAX) - 0.25).abs() < 0.02);
        assert!(counts.iter().max().unwrap() > &200, "heavy tail exists");
    }

    #[test]
    fn view_builder_produces_consistent_view() {
        let mut rng = Rng::new(3);
        let topo = topology::grid(5, 4, 18.0, 2.0, Band::Band5, &mut rng);
        let (view, caps) = to_view(&topo, &ViewOptions::default(), &mut rng);
        assert_eq!(view.len(), 20);
        assert_eq!(caps.len(), 20);
        for (i, ap) in view.aps.iter().enumerate() {
            assert_eq!(ap.neighbors, topo.audible[i]);
            assert_eq!(ap.has_clients, !caps[i].is_empty());
            for (_, wt) in &ap.load.by_width {
                assert!(*wt > 0.0);
            }
            assert!(ap.external_busy.values().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn two4_view_caps_width() {
        let mut rng = Rng::new(4);
        let topo = topology::grid(3, 3, 15.0, 1.0, Band::Band2_4, &mut rng);
        let (view, _) = to_view(&topo, &ViewOptions::default(), &mut rng);
        assert!(view.aps.iter().all(|a| a.max_width == Width::W20));
        assert!(view
            .aps
            .iter()
            .all(|a| US_2_4GHZ_NON_OVERLAPPING.contains(&a.current.primary)));
    }

    #[test]
    fn scanned_view_supports_planning() {
        use crate::scanner::{merge_cycles, scan_cycle, ScannerConfig};
        use chanassign::metrics::{net_p_ln, MetricParams};
        use chanassign::turboca::{ScheduleTier, TurboCa};
        let mut rng = Rng::new(11);
        let topo = topology::grid(4, 4, 12.0, 1.5, Band::Band5, &mut rng);
        let (oracle, _) = to_view(&topo, &ViewOptions::default(), &mut rng);
        // Scan: 4 merged cycles per AP against the oracle ground truth.
        let neighbor_channels: Vec<u16> = oracle.aps.iter().map(|a| a.current.primary).collect();
        let cfg = ScannerConfig::default();
        let scans: Vec<_> = (0..topo.len())
            .map(|i| {
                let cycles: Vec<_> = (0..4)
                    .map(|_| {
                        scan_cycle(
                            &cfg,
                            &topo,
                            i,
                            &oracle.aps[i].external_busy,
                            &neighbor_channels,
                            &mut rng,
                        )
                    })
                    .collect();
                merge_cycles(&cycles, 0.4)
            })
            .collect();
        let scanned = view_from_scans(&topo, &oracle, &scans);
        // A plan computed from scanned inputs must still clearly improve
        // the *true* network metric over the incumbent assignment.
        let params = MetricParams::default();
        let plan = TurboCa::new(5).run(&scanned, ScheduleTier::Slow).plan;
        let incumbent = net_p_ln(&params, &oracle, &chanassign::model::Plan::current(&oracle));
        let planned = net_p_ln(&params, &oracle, &plan);
        assert!(
            planned > incumbent,
            "scan-driven plan {planned} !> incumbent {incumbent}"
        );
    }

    #[test]
    fn profiles_have_paper_scale() {
        assert_eq!(DeploymentProfile::UNET.n_aps, 600);
        assert_eq!(DeploymentProfile::MNET.n_aps, 300);
        assert!(DeploymentProfile::UNET.uplink_gbps.is_some());
        assert!(DeploymentProfile::MNET.uplink_gbps.is_none());
    }

    #[test]
    fn fleet_samples_scale_with_networks() {
        let mut rng = Rng::new(5);
        let (u24, u5) = fleet_utilization_samples(
            50,
            UtilizationProfile::FLEET_2_4,
            UtilizationProfile::FLEET_5,
            &mut rng,
        );
        assert_eq!(u24.len(), u5.len());
        assert!(u24.len() >= 500);
        let m24 = median(&u24).unwrap();
        let m5 = median(&u5).unwrap();
        assert!(m24 > m5, "2.4 GHz busier than 5 GHz");
    }
}

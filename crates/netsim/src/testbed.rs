//! The performance testbed of the paper's §5.6 (Fig. 13), in software:
//! one or two 802.11ac APs in a single collision domain, N wireless
//! clients each sinking one bulk TCP downlink flow from a wired sender
//! behind an MGig switch. FastACK can be toggled per AP at run time.
//!
//! The event loop interleaves three planes exactly as the hardware does:
//!
//! * **wired plane** — sender ↔ AP segments with a fixed switch latency;
//! * **wireless plane** — EDCA contention among every backlogged
//!   transmitter (the APs and every client with pending TCP ACKs),
//!   A-MPDU aggregation per destination, BlockAck delivery reports;
//! * **host plane** — TCP senders (cwnd/RTO), TCP receivers (delayed
//!   ACKs), and the FastACK agent on the AP's forwarding path.
//!
//! Measurements recorded per run match the paper's figures: per-MPDU
//! 802.11 latency, AP-observed TCP latency, per-client throughput and
//! achieved aggregate sizes, cwnd traces, and per-AP airtime.

use fastack::{Action, Agent, AgentConfig};
use mac80211::ac::{AccessCategory, EdcaParams};
use mac80211::aggregation::{build_ampdu, AggLimits, QueuedMpdu};
use mac80211::backoff::Backoff;
use mac80211::contention::BatchResolver;
use mac80211::protection::Protection;
use phy80211::airtime::{ack_duration, block_ack_duration, AirtimeTable, SIFS};
use phy80211::channels::Width;
use phy80211::error_model::PerCache;
use phy80211::mcs::GuardInterval;
use phy80211::rate::RateCache;
use sim::{EventQueue, Rng, SimDuration, SimTime};
use std::collections::VecDeque;
use tcpsim::{
    AckSegment, CcAlgorithm, DataSegment, FlowId, ReceiverConfig, SenderConfig, TcpReceiver,
    TcpSender,
};
use telemetry::health::{standard_ap_detectors, AirtimeSlo, QoeDegraded, RtoStorm};
use telemetry::{
    AirKind, CauseId, CounterId, FlightDump, FlightRecorder, GaugeId, HealthEngine, HealthReport,
    HealthRules, HistId, Registry, SpanId, Timeline, TimelineConfig, TraceRecord,
};

/// Transport driving the downlink flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traffic {
    /// Bulk TCP downloads (the paper's main workload).
    #[default]
    Tcp,
    /// Connectionless saturation: the sender keeps every client queue
    /// full with no ACK clock at all — the paper's UDP upper bound for
    /// aggregation (Fig. 15).
    UdpSaturate,
}

/// Fault injection: a non-WiFi interferer (microwave oven, analog
/// video sender — the §3.2.4 interference sources) that switches on
/// mid-run. While active it occupies `duty` of every `period` with
/// energy the MAC cannot decode, and degrades every station's
/// effective SNR by `snr_penalty_db` — which drags rate selection and
/// per-MPDU delivery down exactly the way shrinking A-MPDU sizes show
/// up in the paper's aggregation CDFs.
#[derive(Debug, Clone, Copy)]
pub struct InterfererFault {
    /// When the interferer switches on.
    pub at: SimTime,
    /// Effective SNR degradation while active, dB.
    pub snr_penalty_db: f64,
    /// Fraction of each period the interferer holds the medium.
    pub duty: f64,
    /// Burst repetition period.
    pub period: SimDuration,
}

impl Default for InterfererFault {
    fn default() -> Self {
        InterfererFault {
            at: SimTime::from_millis(2_000),
            snr_penalty_db: 20.0,
            duty: 0.35,
            period: SimDuration::from_millis(25),
        }
    }
}

/// Per-client wireless link quality.
#[derive(Debug, Clone, Copy)]
pub struct ClientLink {
    /// Downlink SNR at the client, dB.
    pub snr_db: f64,
    /// Max spatial streams the client supports.
    pub max_nss: u8,
}

/// Testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of APs (1 or 2 — Fig. 16 vs Fig. 18).
    pub n_aps: usize,
    /// Clients per AP.
    pub clients_per_ap: usize,
    /// FastACK enabled per AP.
    pub fastack: Vec<bool>,
    /// Channel width used by the AP radios.
    pub width: Width,
    /// Wired one-way latency sender ↔ AP.
    pub wired_latency: SimDuration,
    /// Probability an MPDU's 802.11 delivery report is a "bad hint"
    /// (MAC said delivered, transport never got it; paper footnote 15:
    /// ≈ 1.5 %). Only meaningful on FastACK-enabled APs: it models the
    /// hint channel FastACK consumes — the paper's *baseline* testbed
    /// shows no persistent transport loss (its flows reach the cwnd cap
    /// in Fig. 14), so on baseline APs MAC-acknowledged MPDUs always
    /// reach the transport.
    pub bad_hint_rate: f64,
    /// Probability a wired segment is dropped before the AP (upstream
    /// loss, exercises the §5.5.3 holes path).
    pub upstream_loss: f64,
    /// Base SNR for clients placed nearest the AP; each client's SNR is
    /// spread downward from this to model the Fig. 13 office layout.
    pub base_snr_db: f64,
    /// SNR spread between best- and worst-placed client.
    pub snr_spread_db: f64,
    /// Congestion control on the senders.
    pub cc: CcAlgorithm,
    /// Medium protection (Fig. 18's co-channel APs rely on RTS/CTS).
    pub protection: Protection,
    /// Mean client-side delay before a generated TCP ACK is even
    /// eligible for transmission ("many client devices take over 2 ms to
    /// even begin transmitting TCP ACKs", §5.1), exponential.
    pub ack_base_delay: SimDuration,
    /// Fraction of clients that are "laggy": they experience episodic
    /// uplink stalls (power save, background scans, driver hiccups) — the
    /// paper's arbitrarily slow clients behind the > 400 ms latency tail
    /// and behind Fig. 14's baseline flows that never open their cwnd.
    pub laggy_client_fraction: f64,
    /// Mean interval between stall episodes on a laggy client, seconds.
    pub stall_interval_s: f64,
    /// Stall episode duration range (uniform), ms.
    pub stall_ms: (f64, f64),
    /// FastACK staging target per client, frames: the agent's
    /// queue-budget backpressure keeps about this much buffered per
    /// client (the Click pull stage refills the driver ring from here).
    pub ap_queue_frames: usize,
    /// Shared driver/firmware buffer pool on the baseline arm, frames.
    /// Per-station share = clamp(pool / clients, 24, pool); beyond it,
    /// tail drop. A shared pool is how real NICs behave and is why
    /// baseline aggregation shrinks as client count grows (the §5.6.3
    /// observation that FastACK's headroom grows with contention).
    pub ap_buffer_pool_frames: usize,
    /// Override the FastACK agent's retransmission-cache budget
    /// (None = agent default). Used by the cache ablation.
    pub agent_cache_bytes: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Time-series sampling (see [`telemetry::timeline`]): when set,
    /// a [`Timeline`] ticks on the config's cadence, snapshotting the
    /// selected registry counters/gauges plus the per-flow cwnd f64
    /// series, and the legacy Fig. 14 `cwnd_trace` points are emitted
    /// from the same tick. Sampling only reads — it schedules no
    /// events, draws no randomness, and writes no metric — so every
    /// other artifact stays byte-identical with it on or off. `None`
    /// (the default) samples nothing.
    pub timeline: Option<TimelineConfig>,
    /// Workload driving the flows.
    pub traffic: Traffic,
    /// Beacon interval per AP (102.4 ms nominal); beacons ride the
    /// legacy basic rate and consume airtime whether or not anyone is
    /// listening. `None` disables beaconing.
    pub beacon_interval: Option<SimDuration>,
    /// Flight-recorder ring capacity per component (last-N window of
    /// typed trace records, see `telemetry::flight`). 0 disables
    /// recording entirely.
    pub flight_capacity: usize,
    /// When set, arm flight-recorder mode: any sim-sanitizer violation
    /// writes the recorder's last-N snapshot to this path before the
    /// panic unwinds.
    pub flight_dump_on_violation: Option<std::path::PathBuf>,
    /// Health-rule catalog evaluated over the run's own metrics on the
    /// rules' sampling cadence (see [`telemetry::health`]). Sampling
    /// draws no randomness and schedules no events, so enabling it
    /// cannot perturb the run's trajectory. `None` disables the engine.
    pub health_rules: Option<HealthRules>,
    /// Optional fault injection: a non-WiFi interferer that switches on
    /// mid-run (the health layer's acceptance scenario).
    pub interferer: Option<InterfererFault>,
    /// Application-layer QoE probing (see the `qoe` crate): when set,
    /// every client receives a fixed-rate stream of tiny timestamped
    /// probe MSDUs riding the normal downlink MAC path, and the run
    /// reports per-client delay/jitter/loss/reorder windows reduced to
    /// a 0–100 QoE score. `None` (the default) injects nothing and
    /// registers nothing — existing runs keep their exact trajectory.
    pub qoe: Option<qoe::ProbeConfig>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            n_aps: 1,
            clients_per_ap: 10,
            fastack: vec![true],
            width: Width::W80,
            wired_latency: SimDuration::from_micros(200),
            // Footnote 15 reports "bad hints occur ≈1.5%" without a
            // denominator. Applied iid per MPDU at 45-60-deep aggregates
            // that would put a transport hole in nearly every aggregate
            // and contradict the paper's own Fig. 15/16 results, so the
            // default models a lower effective rate; `abl_bad_hints`
            // sweeps 0-10% to map the sensitivity.
            bad_hint_rate: 0.002,
            upstream_loss: 0.0,
            base_snr_db: 38.0,
            snr_spread_db: 16.0,
            cc: CcAlgorithm::Cubic,
            protection: Protection::RtsCts,
            ack_base_delay: SimDuration::from_millis(2),
            laggy_client_fraction: 0.25,
            stall_interval_s: 1.5,
            stall_ms: (60.0, 280.0),
            ap_queue_frames: 256,
            ap_buffer_pool_frames: 1600,
            agent_cache_bytes: None,
            seed: 1,
            timeline: None,
            traffic: Traffic::Tcp,
            beacon_interval: Some(SimDuration::from_micros(102_400)),
            flight_capacity: 1024,
            flight_dump_on_violation: None,
            health_rules: Some(HealthRules::default()),
            interferer: None,
            qoe: None,
        }
    }
}

/// Per-sender diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SenderStats {
    pub acked_bytes: u64,
    pub cwnd_segments: f64,
    pub retransmits: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub srtt_ms: f64,
}

/// Results of a testbed run.
#[derive(Debug, Clone, Default)]
pub struct TestbedReport {
    /// Per-client delivered application bytes.
    pub client_bytes: Vec<u64>,
    /// Per-client mean achieved A-MPDU size.
    pub client_aggregation: Vec<f64>,
    /// Per-client throughput in Mbps over the run.
    pub client_mbps: Vec<f64>,
    /// Per-AP aggregate throughput (Mbps).
    pub ap_mbps: Vec<f64>,
    /// 802.11 latencies (enqueue → BlockAck), seconds.
    pub mac_latencies: Vec<f64>,
    /// AP-observed TCP latencies (data forwarded → client ACK covering
    /// it arrives back at the AP), seconds — the §4.6.2 definition.
    pub tcp_latencies: Vec<f64>,
    /// cwnd traces: (client index, time s, cwnd segments).
    pub cwnd_trace: Vec<(usize, f64, f64)>,
    /// FastACK agent stats per AP.
    pub agent_stats: Vec<fastack::AgentStats>,
    /// Per-flow TCP sender diagnostics.
    pub sender_stats: Vec<SenderStats>,
    /// Total simulated duration, seconds.
    pub duration_s: f64,
    /// Collision-domain busy fraction.
    pub medium_utilization: f64,
    /// Deterministic metrics snapshot: counters/gauges/histograms from
    /// every plane (`sim.queue.*`, `mac.*`, `tcp.*`, `fastack.*`) plus
    /// the sim-time airtime profile (`air.*` spans). Serialize with
    /// [`Registry::to_json`]; equal seeds yield byte-identical JSON.
    pub metrics: Registry,
    /// Causal flight-recorder snapshot: the last-N typed trace records
    /// per component (`tcp.wire`, `mac.ampdu`, `mac.tx`, `mac.back`,
    /// `fastack.*`, `air`). Serialize with [`FlightDump::to_bytes`];
    /// equal seeds yield byte-identical dumps.
    pub flight: FlightDump,
    /// Health verdict for the run: the alert stream the configured
    /// rule catalog raised over the metrics, with causal ids resolved
    /// against the flight dump. Serialize with
    /// [`HealthReport::to_json`]; equal seeds yield byte-identical
    /// JSON. Empty (zero steps) when `health_rules` is `None`.
    pub health: HealthReport,
    /// Per-client application-layer QoE reports (probe-flow derived
    /// delay/jitter/loss/reorder windows and 0–100 scores). Empty when
    /// `qoe` probing is disabled.
    pub qoe: Vec<qoe::ClientReport>,
    /// Sealed time-series store (None when `timeline` is disabled).
    /// Serialize with [`Timeline::to_bytes`]; equal seeds yield
    /// byte-identical `TSL1` dumps.
    pub timeline: Option<Timeline>,
}

impl TestbedReport {
    pub fn total_mbps(&self) -> f64 {
        self.ap_mbps.iter().sum()
    }
}

// ---------------------------------------------------------------------
// internal world
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Event {
    /// Data segment reaches AP `ap` from the wired side.
    WireData(usize, DataSegment),
    /// ACK reaches the sender of `flow`.
    WireAck(AckSegment),
}

struct ClientState {
    ap: usize,
    flow: FlowId,
    recv: TcpReceiver,
    link: ClientLink,
    /// Uplink queue of pending ACK frames with their earliest-release
    /// times (client-side processing/stall delays; FIFO, so a stalled
    /// head holds everything behind it — exactly the head-of-line
    /// behaviour that trips the sender's RTO).
    ack_queue: VecDeque<(SimTime, AckSegment)>,
    backoff: Backoff,
    /// Bytes delivered to the client transport.
    bytes: u64,
    agg_sizes: Vec<usize>,
    /// Laggy-client stall state: uplink frozen until `stall_until`;
    /// next episode begins at `next_stall_at` (MAX = never, for normal
    /// clients).
    stall_until: SimTime,
    next_stall_at: SimTime,
}

struct ApState {
    agent: Agent,
    /// Per-client downlink MSDU queues (front = oldest). Entries carry
    /// the enqueue time for 802.11-latency accounting.
    queues: Vec<VecDeque<(QueuedMpdu, SimTime)>>,
    /// Priority (head-of-line) stage per client.
    prio: Vec<VecDeque<(QueuedMpdu, SimTime)>>,
    backoff: Backoff,
    /// Round-robin pointer over clients.
    rr: usize,
    bytes_delivered: u64,
}

/// Key for mapping an MPDU id back to its TCP segment. This is exactly
/// the flight recorder's causal-id convention, so an MPDU id *is* the
/// [`CauseId`] joining MAC delivery reports to their TCP segment.
fn mpdu_id(flow: FlowId, seq: u64) -> u64 {
    telemetry::cause_for(flow.0, seq).0
}

fn mpdu_seq(id: u64) -> u64 {
    CauseId(id).seq_hint()
}

pub struct Testbed {
    cfg: TestbedConfig,
    queue: EventQueue<Event>,
    rng: Rng,
    senders: Vec<TcpSender>,
    clients: Vec<ClientState>,
    aps: Vec<ApState>,
    /// Data-segment send times at the AP for TCP-latency accounting,
    /// one sorted deque per flow (index `flow.0 - 1`) of
    /// (end-offset, forward time). New data arrives in order, so the
    /// hot path is a `push_back`; a cumulative client ACK drains every
    /// entry at or below it from the front. Retransmissions (rare)
    /// splice into the sorted position, first write wins — exactly the
    /// `BTreeMap<(flow, end), time>` + `or_insert` semantics this
    /// replaces, at O(1) per segment instead of a map probe.
    tcp_lat_pending: Vec<VecDeque<(u64, SimTime)>>,
    report: TestbedReport,
    busy: SimDuration,
    /// Time-series sampler (None when `cfg.timeline` is None); ticked
    /// on its nominal grid in the run loop, sealed into the report.
    timeline: Option<Timeline>,
    next_timeline: SimTime,
    udp_seq: u64,
    next_beacon: SimTime,
    dbg_next_ms: u64,
    /// Per-flow (last seq_tcp seen, when it last advanced) — drives the
    /// bad-hint liveness repair (see `fastack::Agent::force_repair`).
    repair_watch: Vec<(u64, SimTime)>,
    /// Hot-path metric handles (registered once in `new`); the registry
    /// itself moves into the report at `finish`.
    metrics: Registry,
    /// Causal flight recorder; snapshotted into the report at `finish`.
    flight: FlightRecorder,
    /// Health-detector engine (None when `health_rules` is None);
    /// stepped every `sample_every` of sim time in the run loop.
    health: Option<HealthEngine>,
    next_health: SimTime,
    /// Next interferer burst (MAX when no fault is configured).
    next_interference: SimTime,
    /// Per-client QoE collectors (empty when probing is disabled).
    qoe: Vec<qoe::ClientQoe>,
    /// Next probe-injection tick (MAX when probing is disabled).
    next_probe: SimTime,
    sp_ap_txop: SpanId,
    sp_client_txop: SpanId,
    sp_beacon: SpanId,
    sp_collision: SpanId,
    sp_interferer: SpanId,
    h_ampdu: HistId,
    h_cwnd: HistId,
    c_aggregates: CounterId,
    c_frames: CounterId,
    c_collisions: CounterId,
    /// Per-AP A-MPDU counters feeding the ampdu-collapse detector.
    c_ap_aggs: Vec<CounterId>,
    c_ap_frames: Vec<CounterId>,
    /// Health sampling gauges, refreshed on every health tick.
    g_inflight: Vec<GaugeId>,
    g_fast_acks: Vec<GaugeId>,
    g_backlog: Vec<GaugeId>,
    g_busy: GaugeId,
    g_timeouts: GaugeId,
    /// Per-client QoE score gauges (registered only when probing is on;
    /// the `QoeDegraded` detector reads these paths).
    g_qoe_score: Vec<GaugeId>,
    /// Reusable contender scratch for `medium_round` (no per-round Vec).
    who_buf: Vec<Who>,
    /// Reusable A-MPDU assembly scratch for `ap_txop`.
    staged_buf: Vec<(QueuedMpdu, SimTime)>,
    raw_buf: Vec<QueuedMpdu>,
    /// Reusable sender-output scratch for the wired-ACK hot path.
    seg_buf: Vec<DataSegment>,
    /// Reusable FastACK-action scratch for the per-event agent calls.
    act_buf: Vec<Action>,
    /// In-place DCF round engine (no Backoff clone-out/put-back).
    resolver: BatchResolver,
    /// Exact memoized rate selection keyed on SNR bits (see `RateCache`).
    rate_cache: RateCache,
    /// Exact memoized 1500-byte PER keyed on SNR bits (see `PerCache`).
    per_cache: PerCache,
}

/// A station contending in one medium round.
#[derive(Clone, Copy)]
enum Who {
    Ap(usize),
    Client(usize),
}

impl Testbed {
    pub fn new(cfg: TestbedConfig) -> Testbed {
        assert!(cfg.n_aps >= 1 && cfg.n_aps == cfg.fastack.len());
        let mut rng = Rng::new(cfg.seed);
        let n_clients = cfg.n_aps * cfg.clients_per_ap;

        let mut senders = Vec::with_capacity(n_clients);
        let mut clients = Vec::with_capacity(n_clients);
        for c in 0..n_clients {
            let flow = FlowId(c as u64 + 1);
            senders.push(TcpSender::new(
                flow,
                SenderConfig {
                    algorithm: cfg.cc,
                    ..SenderConfig::default()
                },
            ));
            // Spread client SNRs across the configured range; 3x3
            // MacBooks per the paper, but NSS varies with position noise.
            let frac = if n_clients == 1 {
                0.0
            } else {
                (c % cfg.clients_per_ap) as f64 / (cfg.clients_per_ap - 1).max(1) as f64
            };
            let snr = cfg.base_snr_db - frac * cfg.snr_spread_db + rng.normal(0.0, 1.0);
            let laggy = rng.chance(cfg.laggy_client_fraction);
            let next_stall_at = if laggy {
                SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(cfg.stall_interval_s))
            } else {
                SimTime::MAX
            };
            clients.push(ClientState {
                ap: c / cfg.clients_per_ap,
                flow,
                recv: TcpReceiver::new(flow, ReceiverConfig::default()),
                link: ClientLink {
                    snr_db: snr,
                    max_nss: 3,
                },
                ack_queue: VecDeque::new(),
                backoff: Backoff::new(EdcaParams::for_ac(AccessCategory::BestEffort)),
                bytes: 0,
                agg_sizes: Vec::new(),
                stall_until: SimTime::ZERO,
                next_stall_at,
            });
        }

        let aps = (0..cfg.n_aps)
            .map(|a| ApState {
                agent: Agent::new(AgentConfig {
                    enabled: cfg.fastack[a],
                    queue_budget_bytes: Some(cfg.ap_queue_frames as u64 * 1460),
                    cache_capacity_bytes: cfg
                        .agent_cache_bytes
                        .unwrap_or(AgentConfig::default().cache_capacity_bytes),
                    ..AgentConfig::default()
                }),
                queues: vec![VecDeque::new(); cfg.clients_per_ap],
                prio: vec![VecDeque::new(); cfg.clients_per_ap],
                backoff: Backoff::new(EdcaParams::for_ac(AccessCategory::BestEffort)),
                rr: 0,
                bytes_delivered: 0,
            })
            .collect();

        let mut metrics = Registry::new();
        let sp_ap_txop = metrics.span("air.ap_txop");
        let sp_client_txop = metrics.span("air.client_txop");
        let sp_beacon = metrics.span("air.beacon");
        let sp_collision = metrics.span("air.collision");
        // A-MPDU sizes are bounded by the 64-frame BlockAck window;
        // cwnd by the 770-segment OS cap (clamped into the last bin).
        let h_ampdu = metrics.histogram("mac.ampdu.size", 0.0, 64.0, 64);
        let h_cwnd = metrics.histogram("tcp.cwnd_segments", 0.0, 1024.0, 32);
        let c_aggregates = metrics.counter("mac.ampdu.aggregates");
        let c_frames = metrics.counter("mac.ampdu.frames");
        let c_collisions = metrics.counter("mac.collisions");
        let sp_interferer = metrics.span("air.interferer");
        let c_ap_aggs: Vec<CounterId> = (0..cfg.n_aps)
            .map(|a| metrics.counter(&format!("mac.ap{a}.ampdu.aggregates")))
            .collect();
        let c_ap_frames: Vec<CounterId> = (0..cfg.n_aps)
            .map(|a| metrics.counter(&format!("mac.ap{a}.ampdu.frames")))
            .collect();
        let g_inflight: Vec<GaugeId> = (0..cfg.n_aps)
            .map(|a| metrics.gauge(&format!("health.ap{a}.inflight")))
            .collect();
        let g_fast_acks: Vec<GaugeId> = (0..cfg.n_aps)
            .map(|a| metrics.gauge(&format!("health.ap{a}.fast_acks")))
            .collect();
        let g_backlog: Vec<GaugeId> = (0..cfg.n_aps)
            .map(|a| metrics.gauge(&format!("health.ap{a}.backlog")))
            .collect();
        let g_busy = metrics.gauge("health.air.busy_ns");
        let g_timeouts = metrics.gauge("health.tcp.timeouts");
        // QoE score gauges exist only when probing is configured, so a
        // probe-free run's registry (and its JSON) is untouched.
        let g_qoe_score: Vec<GaugeId> = if cfg.qoe.is_some() {
            (0..n_clients)
                .map(|c| metrics.gauge(&format!("qoe.client{c}.score")))
                .collect()
        } else {
            Vec::new()
        };

        // The standard rule catalog, scoped per AP (each watches only
        // the flows terminating there) plus the shared TCP and airtime
        // detectors over the whole collision domain.
        let health = cfg.health_rules.and_then(|rules| {
            let mut eng = HealthEngine::new();
            for a in 0..cfg.n_aps {
                let flows: Vec<u64> = (0..cfg.clients_per_ap)
                    .map(|k| (a * cfg.clients_per_ap + k) as u64 + 1)
                    .collect();
                for d in standard_ap_detectors(a, flows, cfg.fastack[a], &rules) {
                    eng.add(d);
                }
            }
            let all_flows: Vec<u64> = (1..=n_clients as u64).collect();
            if let Some(r) = rules.rto_storm {
                eng.add(Box::new(RtoStorm::new(
                    "tcp",
                    "health.tcp.timeouts",
                    all_flows,
                    r,
                )));
            }
            if let Some(r) = rules.airtime_slo {
                eng.add(Box::new(AirtimeSlo::new("air", "health.air.busy_ns", r)));
            }
            // QoE degradation watches each AP's clients' score gauges;
            // like the gauges themselves it exists only when probing is
            // configured.
            if cfg.qoe.is_some() {
                if let Some(r) = rules.qoe_degraded {
                    for a in 0..cfg.n_aps {
                        let watch: Vec<(String, u64)> = (0..cfg.clients_per_ap)
                            .map(|k| {
                                let c = a * cfg.clients_per_ap + k;
                                (format!("qoe.client{c}.score"), qoe::probe_flow(c))
                            })
                            .collect();
                        eng.add(Box::new(QoeDegraded::new(format!("ap{a}"), watch, r)));
                    }
                }
            }
            (!eng.is_empty()).then_some(eng)
        });

        let flight = FlightRecorder::new(cfg.flight_capacity);
        if let Some(path) = &cfg.flight_dump_on_violation {
            telemetry::flight::install_violation_dump(&flight, path.clone());
        }
        let next_interference = cfg.interferer.map_or(SimTime::MAX, |i| i.at);
        let qoe_state: Vec<qoe::ClientQoe> = match &cfg.qoe {
            Some(p) => (0..n_clients).map(|_| qoe::ClientQoe::new(p)).collect(),
            None => Vec::new(),
        };
        let next_probe = cfg
            .qoe
            .as_ref()
            .map_or(SimTime::MAX, |p| SimTime::ZERO + p.interval());

        let width = cfg.width;
        let timeline = cfg.timeline.as_ref().map(Timeline::new);
        Testbed {
            cfg,
            queue: EventQueue::new(),
            rng,
            senders,
            clients,
            aps,
            tcp_lat_pending: vec![VecDeque::new(); n_clients],
            report: TestbedReport::default(),
            busy: SimDuration::ZERO,
            timeline,
            next_timeline: SimTime::ZERO,
            udp_seq: 0,
            next_beacon: SimTime::ZERO,
            dbg_next_ms: 0,
            repair_watch: vec![(0, SimTime::ZERO); n_clients],
            metrics,
            flight,
            health,
            next_health: SimTime::ZERO,
            next_interference,
            qoe: qoe_state,
            next_probe,
            sp_ap_txop,
            sp_client_txop,
            sp_beacon,
            sp_collision,
            sp_interferer,
            h_ampdu,
            h_cwnd,
            c_aggregates,
            c_frames,
            c_collisions,
            c_ap_aggs,
            c_ap_frames,
            g_inflight,
            g_fast_acks,
            g_backlog,
            g_busy,
            g_timeouts,
            g_qoe_score,
            who_buf: Vec::new(),
            staged_buf: Vec::new(),
            raw_buf: Vec::new(),
            seg_buf: Vec::new(),
            act_buf: Vec::new(),
            resolver: BatchResolver::new(),
            rate_cache: RateCache::new(width),
            per_cache: PerCache::new(width, 1500),
        }
    }

    /// Run the testbed for `duration` of simulated time and produce the
    /// measurement report.
    pub fn run(mut self, duration: SimDuration) -> TestbedReport {
        // Host-side wall-clock attribution for the whole event loop;
        // a disabled no-op unless the binary was started with --runprof.
        let _prof = telemetry::runprof::span("testbed.run");
        let end = SimTime::ZERO + duration;
        // Resolved once: an env probe per medium round is measurable.
        let dbg_timeline = std::env::var_os("IMC_DEBUG").is_some();
        match self.cfg.traffic {
            Traffic::Tcp => {
                // Kick every sender.
                for s in 0..self.senders.len() {
                    let segs = self.senders[s].poll(SimTime::ZERO);
                    self.ship_to_ap(s, &segs, SimTime::ZERO);
                }
            }
            Traffic::UdpSaturate => self.top_up_udp(),
        }

        while self.queue.now() < end {
            if self.cfg.traffic == Traffic::UdpSaturate {
                self.top_up_udp();
            }
            // 1. Drain wire events due before the next medium round.
            while let Some(t) = self.queue.peek_time() {
                if t > self.queue.now() {
                    break;
                }
                let (at, ev) = self.queue.pop().expect("peeked");
                self.handle_event(ev, at);
            }
            // 2. Host-plane timers (RTO, delayed ACKs), polled per round.
            self.poll_timers();
            // 2b. Beacons: every AP transmits one per interval at the
            // basic control rate (~120 us of airtime for a 300-byte
            // frame + DIFS), independent of traffic.
            if let Some(interval) = self.cfg.beacon_interval {
                if self.queue.now() >= self.next_beacon {
                    let one =
                        phy80211::airtime::control_frame_duration(300) + phy80211::airtime::DIFS;
                    let all = SimDuration::from_nanos(one.as_nanos() * self.cfg.n_aps as u64);
                    let sp = self.metrics.enter(self.sp_beacon, self.queue.now());
                    self.occupy(all);
                    self.metrics.exit(sp, self.queue.now());
                    self.flight.emit(
                        "air",
                        self.queue.now(),
                        CauseId::NONE,
                        TraceRecord::AirtimeSpan {
                            kind: AirKind::Beacon,
                            dur: all,
                        },
                    );
                    self.next_beacon += interval;
                }
            }
            // 2c. Interferer bursts (fault injection): once switched
            // on, the interferer holds the medium for `duty` of every
            // period. Stations defer exactly as they do for beacons.
            if let Some(intf) = self.cfg.interferer {
                if self.queue.now() >= self.next_interference {
                    let hold = SimDuration::from_secs_f64(intf.period.as_secs_f64() * intf.duty);
                    let sp = self.metrics.enter(self.sp_interferer, self.queue.now());
                    self.occupy(hold);
                    self.metrics.exit(sp, self.queue.now());
                    self.flight.emit(
                        "air",
                        self.queue.now(),
                        CauseId::NONE,
                        TraceRecord::AirtimeSpan {
                            kind: AirKind::Interferer,
                            dur: hold,
                        },
                    );
                    self.next_interference += intf.period;
                }
            }
            // 2d. Health sampling on the rules' fixed cadence. The
            // sampler only refreshes gauges and steps the detector
            // engine — no randomness, no events — so enabling it leaves
            // the run's trajectory bit-identical.
            if let Some(rules) = self.cfg.health_rules {
                if self.health.is_some() {
                    while self.queue.now() >= self.next_health {
                        let at = self.next_health;
                        self.health_sample(at);
                        self.next_health += rules.sample_every;
                    }
                }
            }
            // 2e. QoE probe injection on its fixed cadence: one tiny
            // timestamped MSDU per client per tick, enqueued behind the
            // bulk traffic. Probes ride the normal MAC path — contention,
            // aggregation, retries — so their one-way delay measures
            // what an application flow would experience. Injection draws
            // no randomness.
            if let Some(pcfg) = self.cfg.qoe {
                while self.queue.now() >= self.next_probe {
                    let at = self.next_probe;
                    self.inject_probes(&pcfg, at);
                    self.next_probe += pcfg.interval();
                }
            }
            // 3. One contention round on the medium.
            if !self.medium_round() {
                // Medium idle: advance to whatever fires next — a wire
                // event, an RTO, a delayed-ACK timer, or a client-side
                // ACK release.
                let mut wake = self.queue.peek_time();
                let mut fold = |t: Option<SimTime>| {
                    if let Some(t) = t {
                        wake = Some(match wake {
                            Some(w) => w.min(t),
                            None => t,
                        });
                    }
                };
                for s in &self.senders {
                    fold(s.rto_deadline());
                }
                for (ci, c) in self.clients.iter().enumerate() {
                    fold(c.recv.delack_deadline());
                    if let Some((rel, _)) = c.ack_queue.front() {
                        fold(Some((*rel).max(c.stall_until)));
                    }
                    // Pending bad-hint repair.
                    let ap = c.ap;
                    if let Some(st) = self.aps[ap].agent.flow_state(c.flow) {
                        if st.seq_tcp < st.seq_fack {
                            fold(Some(self.repair_watch[ci].1 + SimDuration::from_millis(31)));
                        }
                    }
                }
                // Interferer bursts wake the loop on their own (folded
                // only when configured, so fault-free runs keep their
                // exact event trajectory).
                if self.cfg.interferer.is_some() {
                    fold(Some(self.next_interference));
                }
                // Probe ticks likewise wake the loop only when QoE
                // probing is configured.
                if self.cfg.qoe.is_some() {
                    fold(Some(self.next_probe));
                }
                match wake {
                    Some(t) if t < end => {
                        let t = t.max(self.queue.now());
                        self.queue.advance_to(t);
                        while let Some(pt) = self.queue.peek_time() {
                            if pt > t {
                                break;
                            }
                            let (at, ev) = self.queue.pop().expect("peeked");
                            self.handle_event(ev, at);
                        }
                    }
                    _ => break,
                }
            }
            // Debug timeline (env IMC_DEBUG=1): 100 ms snapshots.
            if dbg_timeline {
                let now = self.queue.now();
                if now.as_millis() >= self.dbg_next_ms {
                    self.dbg_next_ms = now.as_millis() + 100;
                    let q0: usize = self.aps[0].queues.iter().map(|q| q.len()).sum();
                    let p0: usize = self.aps[0].prio.iter().map(|q| q.len()).sum();
                    let st = self.aps[0].agent.flow_state(FlowId(1));
                    eprintln!(
                        "[{:>6}ms] q={q0} prio={p0} snd(una={} nxt-una={} rwnd={} cwnd={:.0}) st={:?}",
                        now.as_millis(),
                        self.senders[0].acked_bytes(),
                        self.senders[0].flight_size(),
                        self.senders[0].peer_rwnd(),
                        self.senders[0].cwnd_segments(),
                        st.map(|s| (s.seq_high, s.seq_exp, s.seq_fack, s.seq_tcp, s.q_seq.len(), s.holes.len()))
                    );
                }
            }
            // 4. Timeline tick (subsumes the old ad-hoc Fig. 14 cwnd
            // probe): catch up to now on the nominal grid, staging the
            // per-flow cwnd series and snapshotting the registry at
            // each tick's nominal instant. Reads only — no events, no
            // randomness, no metric writes — so the trajectory and
            // every other artifact are bit-identical with sampling on
            // or off. Like the old probe (and unlike interferer/probe
            // ticks) this is not folded into the idle wake: samples
            // land when the loop is awake anyway, stamped nominally.
            if let Some(every) = self.timeline.as_ref().map(|t| t.every()) {
                while self.queue.now() >= self.next_timeline {
                    let at = self.next_timeline;
                    self.timeline_tick(at);
                    self.next_timeline += every;
                }
            }
        }

        self.finish(end)
    }

    /// One timeline tick at its nominal instant: emit the legacy
    /// Fig. 14 `cwnd_trace` point and stage the per-flow cwnd f64
    /// series (exactly the values, times and order the retired
    /// `cwnd_sample_every` probe produced), then snapshot the selected
    /// registry counters/gauges. Reads only.
    fn timeline_tick(&mut self, at: SimTime) {
        let tl = self.timeline.as_mut().expect("timeline enabled");
        let t = at.as_nanos() as f64 / 1e9;
        for (c, s) in self.senders.iter().enumerate() {
            let w = s.cwnd_segments();
            self.report.cwnd_trace.push((c, t, w));
            tl.set_f64(&format!("tcp.flow{c}.cwnd_segments"), w);
        }
        tl.sample(at, &self.metrics);
    }

    fn finish(mut self, end: SimTime) -> TestbedReport {
        let dur = end.as_secs_f64().max(1e-9);
        self.report.duration_s = dur;
        self.report.client_bytes = self.clients.iter().map(|c| c.bytes).collect();
        self.report.client_mbps = self
            .clients
            .iter()
            .map(|c| c.bytes as f64 * 8.0 / dur / 1e6)
            .collect();
        self.report.client_aggregation = self
            .clients
            .iter()
            .map(|c| {
                if c.agg_sizes.is_empty() {
                    0.0
                } else {
                    c.agg_sizes.iter().sum::<usize>() as f64 / c.agg_sizes.len() as f64
                }
            })
            .collect();
        self.report.ap_mbps = self
            .aps
            .iter()
            .map(|a| a.bytes_delivered as f64 * 8.0 / dur / 1e6)
            .collect();
        self.report.agent_stats = self.aps.iter().map(|a| a.agent.stats).collect();
        self.report.sender_stats = self
            .senders
            .iter()
            .map(|s| SenderStats {
                acked_bytes: s.acked_bytes(),
                cwnd_segments: s.cwnd_segments(),
                retransmits: s.retransmit_count,
                fast_retransmits: s.fast_retransmit_count,
                timeouts: s.timeout_count,
                srtt_ms: s.srtt().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
            })
            .collect();
        self.report.medium_utilization = self.busy.as_secs_f64() / dur;
        // Flight-recorder snapshot; wraparound losses become visible in
        // the registry as `trace.dropped`.
        self.metrics
            .count("trace.dropped", self.flight.total_dropped());
        self.report.flight = self.flight.snapshot();

        // Health verdict: resolve every alert's causal id against the
        // flight dump (and drop alerts the dump refutes).
        if let Some(eng) = self.health.take() {
            let health = eng.finish(&self.report.flight);
            self.metrics
                .count("health.alerts", health.alerts.len() as u64);
            self.report.health = health;
        }

        // Snapshot every subsystem's counters into the registry.
        let qs = self.queue.stats();
        self.metrics.count("sim.queue.scheduled", qs.scheduled);
        self.metrics.count("sim.queue.popped", qs.popped);
        self.metrics.count("sim.queue.cancelled", qs.cancelled);
        // Capacity-sizing gauges: the arena's lifetime high-water mark
        // (slab slots ever allocated) and the deepest the pending set
        // got. Both are deterministic functions of the trajectory, so
        // they live in the metrics snapshot proper; runprof mirrors
        // them (with the flight-ring occupancy) into its sidecar.
        let arena_peak = self.queue.arena_capacity() as u64;
        let g = self.metrics.gauge("sim.queue.arena_peak");
        self.metrics
            .gauge_set(g, i64::try_from(arena_peak).unwrap_or(i64::MAX));
        let g = self.metrics.gauge("sim.queue.depth_peak");
        self.metrics
            .gauge_set(g, i64::try_from(qs.depth_peak).unwrap_or(i64::MAX));
        telemetry::runprof::watermark("sim.queue.arena_peak", arena_peak);
        telemetry::runprof::watermark("sim.queue.arena_free", self.queue.arena_free() as u64);
        telemetry::runprof::watermark("sim.queue.depth_peak", qs.depth_peak);
        telemetry::runprof::watermark(
            "flight.ring.records",
            self.report.flight.total_records() as u64,
        );
        telemetry::runprof::watermark("flight.ring.dropped", self.report.flight.total_dropped());
        for (a, ap) in self.aps.iter().enumerate() {
            ap.backoff
                .stats
                .export_metrics(&mut self.metrics, &format!("mac.ap{a}.backoff"));
            ap.agent
                .stats
                .export_metrics(&mut self.metrics, &format!("fastack.ap{a}"));
        }
        for c in &self.clients {
            // One shared prefix: client queues sum into fleet-level
            // totals instead of exploding the path space per station.
            c.backoff
                .stats
                .export_metrics(&mut self.metrics, "mac.clients.backoff");
        }
        for s in &self.senders {
            s.export_metrics(&mut self.metrics, "tcp");
            self.metrics.observe(self.h_cwnd, s.cwnd_segments());
        }
        // QoE snapshot: per-client probe counters plus the operational
        // score (x100 so the integer counter keeps two decimals), and
        // the full windowed reports on the report struct.
        if !self.qoe.is_empty() {
            for (c, q) in self.qoe.iter().enumerate() {
                self.metrics.count(&format!("qoe.client{c}.sent"), q.sent);
                self.metrics
                    .count(&format!("qoe.client{c}.delivered"), q.delivered);
                self.metrics.count(&format!("qoe.client{c}.lost"), q.lost);
                self.metrics
                    .count(&format!("qoe.client{c}.reordered"), q.reordered);
                let score = q.score(qoe::OPERATIONAL_WINDOW);
                self.metrics.count(
                    &format!("qoe.client{c}.score_x100"),
                    (score * 100.0).round() as u64,
                );
            }
            self.report.qoe = self
                .qoe
                .iter()
                .enumerate()
                .map(|(c, q)| qoe::ClientReport::from_qoe(c, q))
                .collect();
        }
        // Seal the timeline (flush in-progress downsample buckets) so
        // the report's dump is complete and round-trips byte-stably.
        if let Some(mut tl) = self.timeline.take() {
            tl.seal();
            self.report.timeline = Some(tl);
        }
        debug_assert!(self.metrics.profiler_idle(), "unbalanced span guards");
        self.report.metrics = std::mem::take(&mut self.metrics);
        self.report
    }

    // -- wired plane ---------------------------------------------------

    fn ship_to_ap(&mut self, sender_idx: usize, segs: &[DataSegment], now: SimTime) {
        let ap = self.clients[sender_idx].ap;
        for &seg in segs {
            if self.rng.chance(self.cfg.upstream_loss) {
                continue; // dropped at the switch
            }
            self.queue
                .schedule(now + self.cfg.wired_latency, Event::WireData(ap, seg));
        }
    }

    fn handle_event(&mut self, ev: Event, at: SimTime) {
        match ev {
            Event::WireData(ap, seg) => self.ap_ingress(ap, seg, at),
            Event::WireAck(ack) => {
                let idx = (ack.flow.0 - 1) as usize;
                let mut more = std::mem::take(&mut self.seg_buf);
                more.clear();
                self.senders[idx].on_ack_into(&ack, at, &mut more);
                self.ship_to_ap(idx, &more, at);
                self.seg_buf = more;
            }
        }
    }

    /// Record a FastACK agent action into the flight rings. The record
    /// and causal id come from the action itself
    /// ([`Action::flight_record`]); this only picks the component:
    /// forwards are the wired plane, local retransmissions and
    /// synthesized ACKs are FastACK's doing, pass-through client ACKs
    /// are plain TCP.
    fn record_action(&self, act: &Action, ap_fastack: bool, now: SimTime) {
        let Some((cause, rec)) = act.flight_record(ap_fastack) else {
            return;
        };
        let component = match act {
            Action::Forward { .. } => "tcp.wire",
            Action::LocalRetransmit(_) => "fastack.retx",
            Action::SendAckUpstream(_) => {
                if ap_fastack {
                    "fastack.synth"
                } else {
                    "tcp.ack"
                }
            }
            Action::DropData(_) | Action::SuppressClientAck(_) => return,
        };
        self.flight.emit(component, now, cause, rec);
    }

    /// A data segment arrives at the AP from the wire: run it through the
    /// FastACK agent and enqueue per its verdict.
    fn ap_ingress(&mut self, ap: usize, seg: DataSegment, now: SimTime) {
        let client_slot = (seg.flow.0 - 1) as usize % self.cfg.clients_per_ap;
        let mut actions = std::mem::take(&mut self.act_buf);
        actions.clear();
        self.aps[ap].agent.on_wire_data_into(&seg, &mut actions);
        for act in actions.drain(..) {
            self.record_action(&act, self.cfg.fastack[ap], now);
            match act {
                Action::Forward { seg, priority } => {
                    let depth = self.aps[ap].queues[client_slot].len()
                        + self.aps[ap].prio[client_slot].len();
                    let share = (self.cfg.ap_buffer_pool_frames / self.cfg.clients_per_ap)
                        .clamp(24, self.cfg.ap_buffer_pool_frames);
                    if !self.cfg.fastack[ap] && !priority && !seg.retransmit && depth >= share {
                        // Baseline arm: hard tail drop at the driver
                        // queue; the endpoints recover end-to-end.
                        // Retransmissions bypass the cap (paced by loss
                        // recovery; dropping a repair would livelock).
                        continue;
                    }
                    let lat = &mut self.tcp_lat_pending[(seg.flow.0 - 1) as usize];
                    let end = seg.end();
                    match lat.back() {
                        // Retransmission below the tail: splice into the
                        // sorted position unless already pending (first
                        // write wins, like the or_insert it replaces).
                        Some(&(last, _)) if last >= end => {
                            let pos = lat.partition_point(|&(e, _)| e < end);
                            if lat.get(pos).is_none_or(|&(e, _)| e != end) {
                                lat.insert(pos, (end, now));
                            }
                        }
                        _ => lat.push_back((end, now)),
                    }
                    let mpdu = QueuedMpdu {
                        id: mpdu_id(seg.flow, seg.seq),
                        bytes: seg.len as usize + 40, // + IP/TCP headers
                    };
                    let q = if priority {
                        &mut self.aps[ap].prio[client_slot]
                    } else {
                        &mut self.aps[ap].queues[client_slot]
                    };
                    q.push_back((mpdu, now));
                }
                Action::DropData(_) => {}
                Action::SendAckUpstream(ack) => {
                    self.queue
                        .schedule(now + self.cfg.wired_latency, Event::WireAck(ack));
                }
                Action::LocalRetransmit(seg) => {
                    let mpdu = QueuedMpdu {
                        id: mpdu_id(seg.flow, seg.seq),
                        bytes: seg.len as usize + 40,
                    };
                    self.aps[ap].prio[client_slot].push_back((mpdu, now));
                }
                Action::SuppressClientAck(_) => {}
            }
        }
        self.act_buf = actions;
    }

    // -- host-plane timers ----------------------------------------------

    /// Keep every client's downlink queue saturated with datagrams
    /// (UDP mode). Datagram ids share the MPDU id space but are never
    /// reported to the FastACK agent (no TCP flow to accelerate).
    fn top_up_udp(&mut self) {
        let now = self.queue.now();
        let target = self.cfg.ap_queue_frames.max(64);
        for a in 0..self.aps.len() {
            for slot in 0..self.cfg.clients_per_ap {
                while self.aps[a].queues[slot].len() < target {
                    let n = self.udp_seq;
                    self.udp_seq += 1;
                    let client = a * self.cfg.clients_per_ap + slot;
                    let flow = self.clients[client].flow;
                    let mpdu = QueuedMpdu {
                        id: mpdu_id(flow, n * 1460),
                        bytes: 1500,
                    };
                    self.aps[a].queues[slot].push_back((mpdu, now));
                }
            }
        }
    }

    fn poll_timers(&mut self) {
        if self.cfg.traffic == Traffic::UdpSaturate {
            return; // no TCP machinery to tick
        }
        let now = self.queue.now();
        for s in 0..self.senders.len() {
            if let Some(dl) = self.senders[s].rto_deadline() {
                if now >= dl {
                    let segs = self.senders[s].on_timeout(now);
                    self.ship_to_ap(s, &segs, now);
                }
            }
        }
        // Bad-hint liveness: a flow whose client ACK point trails the
        // fast-ACK point and hasn't moved for a while needs its hole
        // re-served from the cache (both the original and the local
        // retransmission were lost between MAC and transport).
        const REPAIR_AFTER: SimDuration = SimDuration::from_millis(8);
        for c in 0..self.clients.len() {
            let ap = self.clients[c].ap;
            let flow = self.clients[c].flow;
            let (gap, tcp_pt) = match self.aps[ap].agent.flow_state(flow) {
                Some(st) if st.seq_tcp < st.seq_fack => (true, st.seq_tcp),
                Some(st) => (false, st.seq_tcp),
                None => continue,
            };
            let (last_pt, last_at) = self.repair_watch[c];
            if tcp_pt != last_pt {
                self.repair_watch[c] = (tcp_pt, now);
            } else if gap && now.saturating_since(last_at) > REPAIR_AFTER {
                self.repair_watch[c].1 = now;
                let acts = self.aps[ap].agent.force_repair(flow);
                for act in acts {
                    self.record_action(&act, self.cfg.fastack[self.clients[c].ap], now);
                    if let Action::LocalRetransmit(seg) = act {
                        let slot = c % self.cfg.clients_per_ap;
                        let mpdu = QueuedMpdu {
                            id: mpdu_id(seg.flow, seg.seq),
                            bytes: seg.len as usize + 40,
                        };
                        self.aps[ap].prio[slot].push_back((mpdu, now));
                    }
                }
            }
        }
        for c in 0..self.clients.len() {
            if let Some(dl) = self.clients[c].recv.delack_deadline() {
                if now >= dl {
                    if let Some(ack) = self.clients[c].recv.on_delack_timeout(now) {
                        self.push_client_ack(c, ack, now);
                    }
                }
            }
        }
    }

    /// One health tick: refresh the sampling gauges from live state,
    /// then step every detector over the registry. Reads only — the
    /// trajectory of the run is untouched.
    fn health_sample(&mut self, at: SimTime) {
        let nc = self.cfg.clients_per_ap;
        for a in 0..self.aps.len() {
            let backlog: usize = self.aps[a]
                .queues
                .iter()
                .chain(self.aps[a].prio.iter())
                .map(|q| q.len())
                .sum();
            self.metrics.gauge_set(
                self.g_backlog[a],
                i64::try_from(backlog).unwrap_or(i64::MAX),
            );
            self.metrics.gauge_set(
                self.g_fast_acks[a],
                i64::try_from(self.aps[a].agent.stats.fast_acks_sent).unwrap_or(i64::MAX),
            );
            let inflight: u64 = self.senders[a * nc..(a + 1) * nc]
                .iter()
                .map(|s| s.flight_size())
                .sum();
            self.metrics.gauge_set(
                self.g_inflight[a],
                i64::try_from(inflight).unwrap_or(i64::MAX),
            );
        }
        let timeouts: u64 = self.senders.iter().map(|s| s.timeout_count).sum();
        self.metrics
            .gauge_set(self.g_timeouts, i64::try_from(timeouts).unwrap_or(i64::MAX));
        self.metrics.gauge_set(
            self.g_busy,
            i64::try_from(self.busy.as_nanos()).unwrap_or(i64::MAX),
        );
        if std::env::var_os("IMC_HEALTH_DEBUG").is_some() {
            eprintln!(
                "[health {:>6}ms] aggs={:?} frames={:?} busy={:?} timeouts={:?}",
                at.as_millis(),
                self.metrics.counter_value("mac.ap0.ampdu.aggregates"),
                self.metrics.counter_value("mac.ap0.ampdu.frames"),
                self.metrics.gauge_value("health.air.busy_ns"),
                self.metrics.gauge_value("health.tcp.timeouts"),
            );
        }
        if !self.qoe.is_empty() {
            for (c, q) in self.qoe.iter().enumerate() {
                let score = q.score(qoe::OPERATIONAL_WINDOW);
                self.metrics
                    .gauge_set(self.g_qoe_score[c], score.round() as i64);
            }
        }
        if let Some(eng) = self.health.as_mut() {
            eng.step(at, &self.metrics);
        }
    }

    /// One probe tick: every client gets one tiny MSDU stamped with its
    /// send time (the collector keeps the timestamp; the MPDU id packs
    /// the probe flow + sequence, which is also the flight-record cause
    /// joining the tx record to the MAC's delivery report).
    fn inject_probes(&mut self, pcfg: &qoe::ProbeConfig, at: SimTime) {
        for c in 0..self.clients.len() {
            let seq = self.qoe[c].on_sent(at);
            let flow = qoe::probe_flow(c);
            let cause = telemetry::cause_for(flow, seq);
            self.flight.emit(
                "qoe.tx",
                at,
                cause,
                TraceRecord::QoeProbe {
                    flow,
                    seq,
                    delay_ns: 0,
                },
            );
            let ap = self.clients[c].ap;
            let slot = c % self.cfg.clients_per_ap;
            let mpdu = QueuedMpdu {
                id: cause.0,
                bytes: pcfg.payload_bytes as usize + 40, // + IP/UDP headers
            };
            self.aps[ap].queues[slot].push_back((mpdu, at));
        }
    }

    /// Effective-SNR degradation from the interferer, dB (0 before it
    /// switches on or when no fault is configured).
    fn snr_penalty(&self, now: SimTime) -> f64 {
        match self.cfg.interferer {
            Some(i) if now >= i.at => i.snr_penalty_db,
            _ => 0.0,
        }
    }

    /// Queue a client-generated ACK with its release delay.
    fn push_client_ack(&mut self, c: usize, ack: AckSegment, now: SimTime) {
        let delay =
            SimDuration::from_secs_f64(self.rng.exponential(self.cfg.ack_base_delay.as_secs_f64()));
        self.clients[c].ack_queue.push_back((now + delay, ack));
    }

    /// Advance laggy clients' stall episodes.
    fn roll_stalls(&mut self, now: SimTime) {
        let (lo, hi) = self.cfg.stall_ms;
        let interval = self.cfg.stall_interval_s;
        for c in self.clients.iter_mut() {
            if now >= c.next_stall_at {
                let dur = SimDuration::from_secs_f64(self.rng.uniform(lo, hi) / 1e3);
                c.stall_until = now + dur;
                c.next_stall_at = c.stall_until
                    + SimDuration::from_secs_f64(self.rng.exponential(interval).max(0.05));
            }
        }
    }

    // -- wireless plane --------------------------------------------------

    /// Run one EDCA contention round. Returns false if nothing wanted
    /// the medium.
    fn medium_round(&mut self) -> bool {
        // Contenders: APs with any backlog, clients with pending ACKs.
        // The scratch Vec is owned by the testbed and reused round to
        // round; `mem::take` detaches it so `self` stays borrowable.
        let mut who = std::mem::take(&mut self.who_buf);
        who.clear();
        for (a, ap) in self.aps.iter().enumerate() {
            if ap.queues.iter().any(|q| !q.is_empty()) || ap.prio.iter().any(|q| !q.is_empty()) {
                who.push(Who::Ap(a));
            }
        }
        let now = self.queue.now();
        self.roll_stalls(now);
        for (c, cl) in self.clients.iter().enumerate() {
            // A client contends only when its head-of-line ACK has
            // cleared the client-side processing delay and the client is
            // not inside a stall episode.
            if cl.stall_until <= now
                && cl
                    .ack_queue
                    .front()
                    .map(|(rel, _)| *rel <= now)
                    .unwrap_or(false)
            {
                who.push(Who::Client(c));
            }
        }
        if who.is_empty() {
            self.who_buf = who;
            return false;
        }

        // Resolve contention in place over the stations' own backoff
        // state. Draw order (and therefore the RNG stream) matches the
        // old clone-out/`resolve` path exactly: `who` order.
        self.resolver.begin();
        for w in &who {
            match *w {
                Who::Ap(a) => self.resolver.enter(&mut self.aps[a].backoff, &mut self.rng),
                Who::Client(c) => self
                    .resolver
                    .enter(&mut self.clients[c].backoff, &mut self.rng),
            }
        }
        for (i, w) in who.iter().enumerate() {
            match *w {
                Who::Ap(a) => self.resolver.settle(i, &mut self.aps[a].backoff),
                Who::Client(c) => self.resolver.settle(i, &mut self.clients[c].backoff),
            }
        }

        self.queue
            .advance_to(self.queue.now() + self.resolver.idle_time());
        let collision = self.resolver.winners().len() > 1;

        if collision {
            // All colliding transmissions fail; airtime lost depends on
            // protection (RTS collisions are short).
            let cost = self
                .cfg
                .protection
                .collision_cost(SimDuration::from_millis(2));
            self.metrics.inc(self.c_collisions);
            let sp = self.metrics.enter(self.sp_collision, self.queue.now());
            self.occupy(cost);
            self.metrics.exit(sp, self.queue.now());
            self.flight.emit(
                "air",
                self.queue.now(),
                CauseId::NONE,
                TraceRecord::AirtimeSpan {
                    kind: AirKind::Collision,
                    dur: cost,
                },
            );
            for k in 0..self.resolver.winners().len() {
                let wi = self.resolver.winners()[k];
                match who[wi] {
                    Who::Ap(a) => {
                        let _ = self.aps[a].backoff.on_failure();
                    }
                    Who::Client(c) => {
                        let _ = self.clients[c].backoff.on_failure();
                    }
                }
            }
            self.who_buf = who;
            return true;
        }

        let winner = who[self.resolver.winners()[0]];
        self.who_buf = who;
        match winner {
            Who::Ap(a) => self.ap_txop(a),
            Who::Client(c) => self.client_txop(c),
        }
        true
    }

    fn occupy(&mut self, d: SimDuration) {
        self.busy += d;
        self.queue.advance_to(self.queue.now() + d);
    }

    /// The AP won a TXOP: serve the next backlogged client with an
    /// A-MPDU.
    fn ap_txop(&mut self, a: usize) {
        // Pick destination: round-robin over clients with backlog,
        // priority queues first.
        let nc = self.cfg.clients_per_ap;
        let mut slot = None;
        for k in 0..nc {
            let cand = (self.aps[a].rr + k) % nc;
            if !self.aps[a].prio[cand].is_empty() || !self.aps[a].queues[cand].is_empty() {
                slot = Some(cand);
                break;
            }
        }
        let Some(slot) = slot else {
            self.aps[a].backoff.on_success();
            return;
        };
        self.aps[a].rr = (slot + 1) % nc;
        let client_idx = a * nc + slot;
        let link = self.clients[client_idx].link;
        let snr_db = link.snr_db - self.snr_penalty(self.queue.now());

        // Rate from the client's SNR (degraded while an interferer is
        // active — rate control reacts to the noise floor it measures).
        // Memoized: bit-exact `IdealSelector` result per distinct SNR.
        let rate = self.rate_cache.select(link.max_nss, snr_db);

        // Assemble the aggregate: priority MPDUs first, then the queue.
        // Both scratch Vecs live on the testbed and are recycled every
        // TXOP, so steady state allocates nothing here.
        let mut staged = std::mem::take(&mut self.staged_buf);
        let mut raw = std::mem::take(&mut self.raw_buf);
        staged.clear();
        raw.clear();
        while let Some(x) = self.aps[a].prio[slot].pop_front() {
            staged.push(x);
        }
        while let Some(x) = self.aps[a].queues[slot].pop_front() {
            staged.push(x);
        }
        raw.extend(staged.iter().map(|(m, _)| *m));
        let Some(ampdu) = build_ampdu(
            &mut raw,
            rate.mcs,
            rate.nss,
            self.cfg.width,
            GuardInterval::Short,
            AggLimits::default(),
        ) else {
            // Rate invalid (cannot happen with IdealSelector) — restore.
            for x in staged.drain(..).rev() {
                self.aps[a].queues[slot].push_front(x);
            }
            self.staged_buf = staged;
            self.raw_buf = raw;
            self.aps[a].backoff.on_success();
            return;
        };
        let taken = ampdu.size();
        // Anything beyond the aggregate goes back to the queue front.
        for x in staged.drain(taken..).rev() {
            self.aps[a].queues[slot].push_front(x);
        }
        let flow = self.clients[client_idx].flow;
        self.flight.emit(
            "mac.ampdu",
            self.queue.now(),
            ampdu.cause(),
            ampdu.flight_record(flow.0),
        );

        // Airtime: protection + data + SIFS + BlockAck.
        let air = self.cfg.protection.overhead() + ampdu.duration + SIFS + block_ack_duration();
        let sp = self.metrics.enter(self.sp_ap_txop, self.queue.now());
        self.occupy(air);
        self.metrics.exit(sp, self.queue.now());
        let now = self.queue.now();
        self.flight.emit(
            "air",
            now,
            ampdu.cause(),
            TraceRecord::AirtimeSpan {
                kind: AirKind::ApTxop,
                dur: air,
            },
        );

        self.clients[client_idx].agg_sizes.push(taken);
        self.metrics.inc(self.c_aggregates);
        self.metrics.add(self.c_frames, taken as u64);
        self.metrics.inc(self.c_ap_aggs[a]);
        self.metrics.add(self.c_ap_frames[a], taken as u64);
        self.metrics.observe(self.h_ampdu, taken as f64);

        // Per-MPDU delivery draws. The cache returns the exact
        // `mpdu_success_rate` value, so `1.0 - …` is bitwise what the
        // uncached expression produced (NOT `per_cache.error_rate`,
        // which differs in the last ulp from `1 - (1 - per)`).
        let per = 1.0 - self.per_cache.success_rate(snr_db - 1.0, rate.mcs);
        let mut delivered_count = 0usize;
        for (mpdu, enq) in staged.drain(..) {
            let delivered = !self.rng.chance(per);
            // Probe MPDUs carry their own flow id in the packed MPDU id;
            // for TCP (and UDP) MPDUs the hint equals `flow.0`.
            let mflow = CauseId(mpdu.id).flow_hint();
            self.flight.emit(
                "mac.tx",
                now,
                CauseId(mpdu.id),
                TraceRecord::MacTx {
                    flow: mflow,
                    seq: mpdu_seq(mpdu.id),
                    delivered,
                },
            );
            if !delivered {
                // MAC retransmission: back to the priority stage so it
                // leads the next TXOP for this client.
                self.aps[a].prio[slot].push_back((mpdu, enq));
                continue;
            }
            delivered_count += 1;
            // QoE probe delivery: hand the one-way delay to the client's
            // collector and record the receive side of the probe chain.
            // Probes carry no TCP payload, so they bypass the transport
            // and throughput accounting below (and the MAC-latency
            // figure samples, which measure the bulk workload).
            if !self.qoe.is_empty() {
                if let Some(pc) = qoe::probe_client(mflow) {
                    let seq = mpdu_seq(mpdu.id);
                    if self.qoe[pc].on_delivered(seq, now).is_some() {
                        self.flight.emit(
                            "qoe.rx",
                            now,
                            CauseId(mpdu.id),
                            TraceRecord::QoeProbe {
                                flow: mflow,
                                seq,
                                delay_ns: now.saturating_since(enq).as_nanos(),
                            },
                        );
                    }
                    continue;
                }
            }
            // 802.11 latency sample.
            self.report
                .mac_latencies
                .push(now.saturating_since(enq).as_secs_f64());

            if self.cfg.traffic == Traffic::UdpSaturate {
                self.clients[client_idx].bytes += (mpdu.bytes - 40) as u64;
                self.aps[a].bytes_delivered += (mpdu.bytes - 40) as u64;
                continue;
            }

            let seq = mpdu_seq(mpdu.id);
            // Every data MPDU is built with `bytes = seg.len + 40` (wire
            // ingress and local retransmits alike), so the segment
            // length is recovered from the MPDU itself — the old
            // `(flow, seq) → len` side map held exactly this value.
            let len = (mpdu.bytes - 40) as u32;

            // Bad hint: the MAC reports success but the transport never
            // sees the segment (FastACK-signal pathology; see field doc).
            let bad_hint = self.cfg.fastack[a] && self.rng.chance(self.cfg.bad_hint_rate);

            // FastACK observes the 802.11 ACK.
            let mut actions = std::mem::take(&mut self.act_buf);
            actions.clear();
            self.aps[a]
                .agent
                .on_mac_ack_into(flow, seq, len, &mut actions);
            for act in actions.drain(..) {
                self.record_action(&act, self.cfg.fastack[a], now);
                if let Action::SendAckUpstream(ack) = act {
                    self.queue
                        .schedule(now + self.cfg.wired_latency, Event::WireAck(ack));
                }
            }
            self.act_buf = actions;

            if bad_hint {
                continue;
            }

            // Deliver to the client's TCP receiver.
            let seg = DataSegment {
                flow,
                seq,
                len,
                retransmit: false,
            };
            let before = self.clients[client_idx].recv.delivered_bytes;
            let ack = self.clients[client_idx].recv.on_data(&seg, now);
            let after = self.clients[client_idx].recv.delivered_bytes;
            let newly = after - before;
            self.clients[client_idx].bytes += newly;
            self.aps[a].bytes_delivered += newly;
            if let Some(ack) = ack {
                self.push_client_ack(client_idx, ack, now);
            }
        }

        self.staged_buf = staged;
        self.raw_buf = raw;
        self.flight.emit(
            "mac.back",
            now,
            ampdu.cause(),
            TraceRecord::BlockAck {
                flow: flow.0,
                acked: u32::try_from(delivered_count).expect("BlockAck window"),
                lost: u32::try_from(taken - delivered_count).expect("BlockAck window"),
            },
        );

        if delivered_count == 0 {
            // Whole-PPDU loss: the BlockAck never came back; contention
            // treats it as a failed attempt (CW doubles).
            let exhausted = self.aps[a].backoff.on_failure();
            if exhausted {
                // Retry limit: drop this client's pending retransmissions
                // (rare at these SNRs; TCP recovers end-to-end). Dropped
                // QoE probes are terminal — report them to the collector
                // as lost. Draining equals the old `clear()` when no
                // probes are queued.
                while let Some((m, _)) = self.aps[a].prio[slot].pop_front() {
                    if self.qoe.is_empty() {
                        continue;
                    }
                    if let Some(pc) = qoe::probe_client(CauseId(m.id).flow_hint()) {
                        self.qoe[pc].on_lost(mpdu_seq(m.id));
                    }
                }
                self.aps[a].backoff.on_drop();
            }
        } else {
            self.aps[a].backoff.on_success();
        }
    }

    /// A client won a TXOP: transmit its queued TCP ACKs (coalesced into
    /// one short uplink burst).
    fn client_txop(&mut self, c: usize) {
        // All *released* pending ACKs ride one TXOP (they are tiny
        // frames); model airtime as one small A-MPDU at the client's
        // uplink rate.
        let now = self.queue.now();
        let n = self.clients[c]
            .ack_queue
            .iter()
            .take_while(|(rel, _)| *rel <= now)
            .count()
            .min(64);
        if n == 0 {
            self.clients[c].backoff.on_success();
            return;
        }
        let link = self.clients[c].link;
        // Uplink slightly worse; the interferer hits it too.
        let rate = self
            .rate_cache
            .select(link.max_nss, link.snr_db - 2.0 - self.snr_penalty(now));
        // Uniform 90-byte ACK MPDUs (TCP ACK + MAC overhead): the
        // airtime table computes the burst without building a sizes Vec.
        let dur = AirtimeTable::new(rate.mcs, rate.nss, self.cfg.width, GuardInterval::Short)
            .map(|t| t.ampdu_duration_uniform(n, 90))
            .unwrap_or(ack_duration());
        let air = dur + SIFS + block_ack_duration();
        // The uplink burst joins the chain of its head ACK.
        let burst_cause = self.clients[c]
            .ack_queue
            .front()
            .map_or(CauseId::NONE, |(_, ack)| ack.cause());
        let sp = self.metrics.enter(self.sp_client_txop, self.queue.now());
        self.occupy(air);
        self.metrics.exit(sp, self.queue.now());
        let now = self.queue.now();
        self.flight.emit(
            "air",
            now,
            burst_cause,
            TraceRecord::AirtimeSpan {
                kind: AirKind::ClientTxop,
                dur: air,
            },
        );

        let ap = self.clients[c].ap;
        for _ in 0..n {
            let (_, ack) = self.clients[c].ack_queue.pop_front().expect("n bounded");
            // TCP latency samples: the cumulative ACK covers every
            // pending data segment at or below it — pop the flow's
            // sorted deque from the front (same ascending order the old
            // map range walk produced).
            let lat = &mut self.tcp_lat_pending[(ack.flow.0 - 1) as usize];
            while let Some(&(end, t0)) = lat.front() {
                if end > ack.ack {
                    break;
                }
                lat.pop_front();
                self.report
                    .tcp_latencies
                    .push(now.saturating_since(t0).as_secs_f64());
            }
            let mut actions = std::mem::take(&mut self.act_buf);
            actions.clear();
            self.aps[ap].agent.on_client_ack_into(&ack, &mut actions);
            for act in actions.drain(..) {
                self.record_action(&act, self.cfg.fastack[ap], now);
                match act {
                    Action::SendAckUpstream(a2) => {
                        self.queue
                            .schedule(now + self.cfg.wired_latency, Event::WireAck(a2));
                    }
                    Action::LocalRetransmit(seg) => {
                        let slot = c % self.cfg.clients_per_ap;
                        let mpdu = QueuedMpdu {
                            id: mpdu_id(seg.flow, seg.seq),
                            bytes: seg.len as usize + 40,
                        };
                        self.aps[ap].prio[slot].push_back((mpdu, now));
                    }
                    _ => {}
                }
            }
            self.act_buf = actions;
        }
        self.clients[c].backoff.on_success();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: TestbedConfig, secs: u64) -> TestbedReport {
        Testbed::new(cfg).run(SimDuration::from_secs(secs))
    }

    #[test]
    fn single_client_moves_data() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 1,
                fastack: vec![true],
                ..TestbedConfig::default()
            },
            2,
        );
        assert!(r.client_bytes[0] > 1_000_000, "{:?}", r.client_bytes);
        assert!(r.total_mbps() > 50.0, "{}", r.total_mbps());
        assert!(r.medium_utilization > 0.1);
    }

    #[test]
    fn baseline_also_moves_data() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 1,
                fastack: vec![false],
                ..TestbedConfig::default()
            },
            2,
        );
        assert!(r.client_bytes[0] > 500_000, "{:?}", r.client_bytes);
        assert_eq!(r.agent_stats[0].fast_acks_sent, 0);
    }

    #[test]
    fn fastack_beats_baseline_with_many_clients() {
        let mk = |fa: bool| {
            quick(
                TestbedConfig {
                    clients_per_ap: 10,
                    fastack: vec![fa],
                    seed: 7,
                    ..TestbedConfig::default()
                },
                3,
            )
        };
        let fast = mk(true);
        let base = mk(false);
        assert!(
            fast.total_mbps() > base.total_mbps(),
            "fast={} base={}",
            fast.total_mbps(),
            base.total_mbps()
        );
        // Aggregation improves too.
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&fast.client_aggregation) > mean(&base.client_aggregation),
            "fast={:?} base={:?}",
            mean(&fast.client_aggregation),
            mean(&base.client_aggregation)
        );
    }

    #[test]
    fn fast_acks_flow_and_client_acks_suppressed() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 5,
                fastack: vec![true],
                ..TestbedConfig::default()
            },
            2,
        );
        let st = r.agent_stats[0];
        assert!(st.fast_acks_sent > 100, "{st:?}");
        assert!(st.client_acks_suppressed > 50, "{st:?}");
    }

    #[test]
    fn tcp_latency_exceeds_mac_latency() {
        // Fig. 10's core observation.
        let r = quick(
            TestbedConfig {
                clients_per_ap: 10,
                fastack: vec![false],
                ..TestbedConfig::default()
            },
            3,
        );
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let mac = mean(&r.mac_latencies);
        let tcp = mean(&r.tcp_latencies);
        assert!(!r.mac_latencies.is_empty() && !r.tcp_latencies.is_empty());
        assert!(tcp > mac, "tcp={tcp} mac={mac}");
    }

    #[test]
    fn bad_hints_trigger_local_retransmits() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 4,
                fastack: vec![true],
                bad_hint_rate: 0.05,
                seed: 3,
                ..TestbedConfig::default()
            },
            3,
        );
        assert!(
            r.agent_stats[0].local_retransmits > 0,
            "{:?}",
            r.agent_stats[0]
        );
        // Flows still make progress despite 5% bad hints.
        assert!(
            r.client_bytes.iter().all(|&b| b > 100_000),
            "{:?}",
            r.client_bytes
        );
    }

    #[test]
    fn upstream_loss_detected_as_holes() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 3,
                fastack: vec![true],
                upstream_loss: 0.02,
                seed: 5,
                ..TestbedConfig::default()
            },
            3,
        );
        assert!(
            r.agent_stats[0].holes_detected > 0,
            "{:?}",
            r.agent_stats[0]
        );
        assert!(r.client_bytes.iter().all(|&b| b > 100_000));
    }

    #[test]
    fn two_aps_share_the_medium() {
        let r = quick(
            TestbedConfig {
                n_aps: 2,
                clients_per_ap: 5,
                fastack: vec![true, true],
                seed: 11,
                ..TestbedConfig::default()
            },
            3,
        );
        assert_eq!(r.ap_mbps.len(), 2);
        assert!(
            r.ap_mbps[0] > 10.0 && r.ap_mbps[1] > 10.0,
            "{:?}",
            r.ap_mbps
        );
        // Neither AP should starve: within 3x of each other.
        let ratio = r.ap_mbps[0] / r.ap_mbps[1];
        assert!((0.33..3.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn cwnd_trace_is_recorded() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 2,
                fastack: vec![true],
                timeline: Some(TimelineConfig::sampling(SimDuration::from_millis(100))),
                ..TestbedConfig::default()
            },
            2,
        );
        assert!(r.cwnd_trace.len() >= 2 * 15, "{}", r.cwnd_trace.len());
        // cwnd grows over the run with FastACK.
        let last = r.cwnd_trace.iter().rev().find(|t| t.0 == 0).unwrap();
        assert!(last.2 > 10.0, "{last:?}");
    }

    /// The timeline's f64 cwnd series reproduces the legacy
    /// `cwnd_trace` points bit-for-bit: same instants (to the printed
    /// f64 second), same values, per flow — the acceptance criterion
    /// for retiring the ad-hoc cwnd sampler.
    #[test]
    fn timeline_cwnd_series_matches_cwnd_trace() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 2,
                fastack: vec![true],
                timeline: Some(TimelineConfig::sampling(SimDuration::from_millis(100))),
                ..TestbedConfig::default()
            },
            2,
        );
        let tl = r.timeline.as_ref().expect("timeline enabled");
        for c in 0..2usize {
            let series = tl.range(
                &format!("tcp.flow{c}.cwnd_segments"),
                SimTime::ZERO,
                SimTime::MAX,
            );
            let legacy: Vec<(f64, f64)> = r
                .cwnd_trace
                .iter()
                .filter(|t| t.0 == c)
                .map(|&(_, at, w)| (at, w))
                .collect();
            assert_eq!(series.len(), legacy.len(), "flow {c}");
            for ((at, w), (lat, lw)) in series.iter().zip(&legacy) {
                assert_eq!(at.as_nanos() as f64 / 1e9, *lat, "flow {c}");
                assert_eq!(w.to_bits(), lw.to_bits(), "flow {c}");
            }
        }
        // The registry series rode along: health gauges are visible as
        // timeline series on the same grid.
        assert!(tl.series_names().any(|n| n == "health.air.busy_ns"));
        assert_eq!(tl.every(), SimDuration::from_millis(100));
    }

    /// Crown-jewel check for the sampler itself: a run with a timeline
    /// produces byte-identical metrics/flight/health artifacts to the
    /// same run without one (trajectory neutrality), and double-running
    /// with the timeline yields byte-identical TSL1 dumps.
    #[test]
    fn timeline_is_trajectory_neutral_and_deterministic() {
        let base = quick(
            TestbedConfig {
                clients_per_ap: 3,
                fastack: vec![true],
                seed: 77,
                ..TestbedConfig::default()
            },
            2,
        );
        let mk = || {
            quick(
                TestbedConfig {
                    clients_per_ap: 3,
                    fastack: vec![true],
                    seed: 77,
                    timeline: Some(TimelineConfig::sampling(SimDuration::from_millis(50))),
                    ..TestbedConfig::default()
                },
                2,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(base.metrics.to_json(), a.metrics.to_json());
        assert_eq!(base.flight.to_bytes(), a.flight.to_bytes());
        assert_eq!(base.health.to_json(), a.health.to_json());
        let da = a.timeline.as_ref().expect("timeline").to_bytes();
        let db = b.timeline.as_ref().expect("timeline").to_bytes();
        assert_eq!(da, db);
        assert!(Timeline::parse(&da).expect("parse").ticks() > 0);
    }

    #[test]
    fn udp_saturation_hits_the_blockack_window() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 5,
                fastack: vec![false],
                traffic: Traffic::UdpSaturate,
                ..TestbedConfig::default()
            },
            2,
        );
        let mean = r.client_aggregation.iter().sum::<f64>() / 5.0;
        assert!(mean > 60.0, "UDP bound should approach 64: {mean}");
        assert!(r.total_mbps() > 300.0, "{}", r.total_mbps());
        // No TCP machinery ran.
        assert!(r.tcp_latencies.is_empty());
        assert_eq!(r.agent_stats[0].fast_acks_sent, 0);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = TestbedConfig {
            clients_per_ap: 4,
            fastack: vec![true],
            seed: 99,
            ..TestbedConfig::default()
        };
        let a = Testbed::new(cfg.clone()).run(SimDuration::from_secs(1));
        let b = Testbed::new(cfg).run(SimDuration::from_secs(1));
        assert_eq!(a.client_bytes, b.client_bytes);
        assert_eq!(a.agent_stats, b.agent_stats);
        // The metrics snapshot is part of the determinism contract:
        // byte-identical JSON for equal seeds.
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        // So is the flight dump: byte-identical binary for equal seeds.
        assert_eq!(a.flight.to_bytes(), b.flight.to_bytes());
        assert!(a.flight.total_records() > 0);
    }

    #[test]
    fn flight_chain_crosses_the_stack() {
        // The acceptance chain: one flow traceable TCP-seg → A-MPDU →
        // MAC tx → BlockAck → fast ACK, plus the airtime it paid for.
        let r = quick(
            TestbedConfig {
                clients_per_ap: 2,
                fastack: vec![true],
                seed: 17,
                ..TestbedConfig::default()
            },
            2,
        );
        assert_eq!(
            r.metrics.counter_value("trace.dropped"),
            Some(r.flight.total_dropped())
        );
        let chain = r.flight.chain(1);
        let has = |layer: &str| chain.iter().any(|(_, ev)| ev.record.layer() == layer);
        for layer in [
            "tcp-seg",
            "ampdu-build",
            "mac-tx",
            "block-ack",
            "fastack-synth",
            "airtime-span",
        ] {
            assert!(has(layer), "chain is missing {layer}: {:?}", chain.len());
        }
        // Time-ordered.
        assert!(chain.windows(2).all(|w| w[0].1.at <= w[1].1.at));
        // Components carry the expected names.
        for name in [
            "tcp.wire",
            "mac.ampdu",
            "mac.tx",
            "mac.back",
            "fastack.synth",
        ] {
            assert!(
                r.flight.components.iter().any(|c| c.name == name),
                "missing component {name}"
            );
        }
    }

    #[test]
    fn flight_capacity_zero_disables_recording() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 1,
                fastack: vec![true],
                flight_capacity: 0,
                ..TestbedConfig::default()
            },
            1,
        );
        assert_eq!(r.flight.total_records(), 0);
        assert_eq!(r.metrics.counter_value("trace.dropped"), Some(0));
    }

    #[test]
    fn metrics_cover_every_plane() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 4,
                fastack: vec![true],
                seed: 21,
                ..TestbedConfig::default()
            },
            2,
        );
        let m = &r.metrics;
        // sim kernel
        assert!(m.counter_value("sim.queue.scheduled").unwrap() > 0);
        assert!(m.counter_value("sim.queue.popped").unwrap() > 0);
        // MAC
        assert!(m.counter_value("mac.ampdu.frames").unwrap() > 0);
        assert!(m.counter_value("mac.ap0.backoff.draws").unwrap() > 0);
        let h = m.histogram_value("mac.ampdu.size").unwrap();
        assert!(h.total > 0 && h.nan_count == 0);
        // TCP + FastACK
        assert!(m.counter_value("tcp.retransmits").is_some());
        assert!(m.gauge_value("tcp.cwnd_segments").is_some());
        assert!(m.counter_value("fastack.ap0.fast_acks_sent").unwrap() > 0);
        // Sim-time profiler: AP TXOPs dominate a downlink-heavy run and
        // total attributed airtime matches the utilization accounting.
        let ap = m.span_value("air.ap_txop").unwrap();
        assert!(ap.calls > 0 && ap.total_time > sim::SimDuration::ZERO);
        let spans = [
            "air.ap_txop",
            "air.client_txop",
            "air.beacon",
            "air.collision",
            "air.interferer",
        ];
        let attributed: u64 = spans
            .iter()
            .filter_map(|s| m.span_value(s))
            .map(|s| s.total_time.as_nanos())
            .sum();
        let busy_ns = (r.medium_utilization * r.duration_s * 1e9) as u64;
        let diff = attributed.abs_diff(busy_ns);
        assert!(diff < busy_ns / 100, "spans {attributed} vs busy {busy_ns}");
    }

    #[test]
    fn clean_run_raises_no_alerts() {
        // The default rule catalog over a fault-free run must stay
        // silent — the central false-positive guarantee.
        let r = quick(
            TestbedConfig {
                clients_per_ap: 6,
                fastack: vec![true],
                seed: 42,
                ..TestbedConfig::default()
            },
            4,
        );
        assert!(r.health.steps > 10, "sampler never ran: {}", r.health.steps);
        assert!(r.health.alerts.is_empty(), "{:#?}", r.health.alerts);
    }

    #[test]
    fn health_rules_none_disables_the_engine() {
        let r = quick(
            TestbedConfig {
                clients_per_ap: 2,
                fastack: vec![true],
                health_rules: None,
                ..TestbedConfig::default()
            },
            1,
        );
        assert_eq!(r.health.steps, 0);
        assert!(r.health.alerts.is_empty());
    }

    #[test]
    fn interferer_fault_raises_ampdu_collapse_with_causal_chain() {
        // The acceptance scenario: a non-WiFi interferer switches on
        // mid-run, aggregates collapse, the detector raises, and the
        // alert's cause id resolves to a complete cross-layer chain.
        let cfg = TestbedConfig {
            clients_per_ap: 6,
            fastack: vec![true],
            seed: 42,
            interferer: Some(InterfererFault::default()),
            ..TestbedConfig::default()
        };
        let r = Testbed::new(cfg.clone()).run(SimDuration::from_secs(5));
        let collapse: Vec<_> = r
            .health
            .alerts
            .iter()
            .filter(|a| a.rule == "ampdu-collapse")
            .collect();
        assert!(!collapse.is_empty(), "alerts: {:#?}", r.health.alerts);
        let alert = collapse[0];
        assert!(alert.raised_at >= InterfererFault::default().at);
        let flow = alert.cause_flow().expect("cause id resolved");
        let chain = r.flight.chain(flow);
        for layer in ["tcp-seg", "ampdu-build", "mac-tx", "block-ack"] {
            assert!(
                chain.iter().any(|(_, ev)| ev.record.layer() == layer),
                "chain for flow {flow} is missing {layer}"
            );
        }
        // The interferer's airtime is itself on the record.
        assert!(r
            .flight
            .components
            .iter()
            .any(|c| c.records.iter().any(|ev| matches!(
                ev.record,
                TraceRecord::AirtimeSpan {
                    kind: AirKind::Interferer,
                    ..
                }
            ))));
        // And the health verdict is part of the determinism contract.
        let again = Testbed::new(cfg).run(SimDuration::from_secs(5));
        assert_eq!(r.health.to_json(), again.health.to_json());
    }

    #[test]
    fn qoe_probes_flow_and_score_on_a_clean_run() {
        let cfg = TestbedConfig {
            clients_per_ap: 4,
            fastack: vec![true],
            seed: 42,
            qoe: Some(qoe::ProbeConfig::default()),
            ..TestbedConfig::default()
        };
        let r = Testbed::new(cfg).run(SimDuration::from_secs(4));
        assert_eq!(r.qoe.len(), 4);
        for cr in &r.qoe {
            assert!(cr.sent > 100, "client {} sent {}", cr.client, cr.sent);
            assert!(
                cr.delivered as f64 >= cr.sent as f64 * 0.5,
                "client {}: {}/{} delivered",
                cr.client,
                cr.delivered,
                cr.sent
            );
        }
        // No interferer: nobody should look degraded.
        assert!(
            !r.health.alerts.iter().any(|a| a.rule == "qoe-degraded"),
            "clean run raised: {:#?}",
            r.health.alerts
        );
        // Probe counters land in the metrics namespace.
        assert!(r.metrics.counter_value("qoe.client0.sent").unwrap_or(0) > 100);
        assert!(r.metrics.counter_value("qoe.client0.score_x100").is_some());
    }

    #[test]
    fn qoe_degrades_under_interference_with_probe_causal_chain() {
        // The QoE acceptance scenario: the interferer switches on
        // mid-run, probe delay/loss blow up, the worst client's score
        // collapses, and the alert's cause resolves to the probe flow's
        // own records.
        let cfg = TestbedConfig {
            clients_per_ap: 6,
            fastack: vec![true],
            seed: 42,
            interferer: Some(InterfererFault::default()),
            qoe: Some(qoe::ProbeConfig::default()),
            ..TestbedConfig::default()
        };
        let r = Testbed::new(cfg.clone()).run(SimDuration::from_secs(5));
        let degraded: Vec<_> = r
            .health
            .alerts
            .iter()
            .filter(|a| a.rule == "qoe-degraded")
            .collect();
        assert!(!degraded.is_empty(), "alerts: {:#?}", r.health.alerts);
        let alert = degraded[0];
        assert!(alert.raised_at >= InterfererFault::default().at);
        let flow = alert.cause_flow().expect("cause id resolved");
        assert!(
            qoe::is_probe_flow(flow),
            "cause flow {flow:#x} is not a probe flow"
        );
        let chain = r.flight.chain(flow);
        for layer in ["qoe-probe", "mac-tx"] {
            assert!(
                chain.iter().any(|(_, ev)| ev.record.layer() == layer),
                "chain for probe flow {flow:#x} is missing {layer}"
            );
        }
        // The victim's report shows the damage the alert claims.
        let victim = qoe::probe_client(flow).expect("probe flow maps back");
        let score = r.qoe[victim].score();
        assert!(score <= 60.0, "victim score {score} not degraded");

        // Determinism: the whole QoE pipeline is part of the contract.
        let again = Testbed::new(cfg).run(SimDuration::from_secs(5));
        assert_eq!(r.health.to_json(), again.health.to_json());
        assert_eq!(r.metrics.to_json(), again.metrics.to_json());
        assert_eq!(r.flight.to_bytes(), again.flight.to_bytes());
        assert_eq!(r.qoe, again.qoe);
    }
}

//! Client → AP association policies.
//!
//! Paper §3.1 (discussing WiFiSeer): "using RSSI to select AP is
//! inadequate" — clients pile onto the loudest AP and starve, while a
//! radio-factor-aware choice (utilization, load) finds low-latency
//! attachment points. This module implements both the naive and the
//! informed policies over the same propagation model, so experiments can
//! quantify the difference and the deployment generators can place
//! clients the way real ones do.

use crate::topology::Topology;
use phy80211::channels::Width;
use phy80211::propagation::{noise_floor_dbm, Propagation, Radio, SENSITIVITY_DBM};
use phy80211::rate::IdealSelector;
use phy80211::Point;
use sim::Rng;

/// How a client picks its AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocPolicy {
    /// Attach to the strongest signal, period (the default client
    /// behaviour the paper calls inadequate).
    StrongestRssi,
    /// Attach to the AP with the fewest associated clients among those
    /// above sensitivity.
    LeastLoaded,
    /// Attach to the AP maximizing expected throughput:
    /// `phy_rate(SNR) / (1 + clients)` — a WiFiSeer-style radio-factor
    /// decision.
    UtilizationAware,
}

/// Result of associating a set of clients.
#[derive(Debug, Clone, Default)]
pub struct AssociationOutcome {
    /// Chosen AP per client (None = out of range of everything).
    pub chosen: Vec<Option<usize>>,
    /// Client count per AP.
    pub per_ap: Vec<usize>,
    /// Expected per-client throughput (bps) under equal airtime sharing
    /// at the chosen AP.
    pub expected_bps: Vec<f64>,
}

impl AssociationOutcome {
    /// The minimum expected throughput across associated clients — the
    /// "worst client" metric that RSSI-based steering wrecks.
    pub fn worst_client_bps(&self) -> f64 {
        self.expected_bps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean expected throughput.
    pub fn mean_bps(&self) -> f64 {
        if self.expected_bps.is_empty() {
            0.0
        } else {
            self.expected_bps.iter().sum::<f64>() / self.expected_bps.len() as f64
        }
    }
}

/// Associate `clients` (positions) to the APs of `topo` under `policy`,
/// processing clients in arrival order (associations are sticky; later
/// arrivals see earlier ones' load).
pub fn associate(
    topo: &Topology,
    clients: &[Point],
    policy: AssocPolicy,
    width: Width,
    rng: &mut Rng,
) -> AssociationOutcome {
    let prop = Propagation::indoor(topo.band);
    let sel = IdealSelector::new(width, 2);
    let mut per_ap = vec![0usize; topo.len()];
    let mut chosen = Vec::with_capacity(clients.len());
    // Remember each client's SNR at its chosen AP for the final
    // expected-throughput pass.
    let mut snrs = Vec::with_capacity(clients.len());

    for c in clients {
        // Candidate RSSIs (one shadowing draw per client-AP link).
        let rssis: Vec<f64> = topo
            .aps
            .iter()
            .map(|ap| {
                let d = ap.position.distance(c);
                Radio::AP_DEFAULT.rssi_dbm(prop.path_loss_shadowed_db(d, rng))
            })
            .collect();
        let audible: Vec<usize> = (0..topo.len())
            .filter(|&i| rssis[i] >= SENSITIVITY_DBM)
            .collect();
        if audible.is_empty() {
            chosen.push(None);
            snrs.push(0.0);
            continue;
        }
        let pick = match policy {
            AssocPolicy::StrongestRssi => *audible
                .iter()
                .max_by(|&&a, &&b| rssis[a].total_cmp(&rssis[b]))
                .expect("non-empty"),
            AssocPolicy::LeastLoaded => *audible
                .iter()
                .min_by_key(|&&a| (per_ap[a], -(rssis[a] * 100.0) as i64))
                .expect("non-empty"),
            AssocPolicy::UtilizationAware => *audible
                .iter()
                .max_by(|&&a, &&b| {
                    let score = |i: usize| {
                        let snr = rssis[i] - noise_floor_dbm(width);
                        sel.select(snr).bps as f64 / (1.0 + per_ap[i] as f64)
                    };
                    score(a).total_cmp(&score(b))
                })
                .expect("non-empty"),
        };
        per_ap[pick] += 1;
        chosen.push(Some(pick));
        snrs.push(rssis[pick] - noise_floor_dbm(width));
    }

    // Expected throughput: equal airtime share at the final loads.
    let expected_bps = chosen
        .iter()
        .zip(snrs.iter())
        .filter_map(|(ap, &snr)| ap.map(|a| sel.select(snr).bps as f64 / per_ap[a].max(1) as f64))
        .collect();

    AssociationOutcome {
        chosen,
        per_ap,
        expected_bps,
    }
}

/// Place `n` clients as a hotspot crowd: clustered around one point
/// (a conference room, a museum exhibit) with the given spread.
pub fn hotspot_clients(center: Point, spread_m: f64, n: usize, rng: &mut Rng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                center.x + rng.normal(0.0, spread_m),
                center.y + rng.normal(0.0, spread_m),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use phy80211::channels::Band;

    fn setup() -> (Topology, Vec<Point>, Rng) {
        let mut rng = Rng::new(1);
        // A 4×1 corridor of APs, 25 m apart; the crowd sits near AP 0.
        let topo = topology::grid(4, 1, 25.0, 0.5, Band::Band5, &mut rng);
        let crowd = hotspot_clients(topo.aps[0].position, 6.0, 40, &mut rng);
        (topo, crowd, rng)
    }

    #[test]
    fn rssi_policy_herds_the_hotspot() {
        let (topo, crowd, mut rng) = setup();
        let out = associate(
            &topo,
            &crowd,
            AssocPolicy::StrongestRssi,
            Width::W80,
            &mut rng,
        );
        // Nearly everyone lands on AP 0.
        assert!(out.per_ap[0] >= 30, "{:?}", out.per_ap);
    }

    #[test]
    fn utilization_aware_spreads_and_lifts_the_worst_client() {
        let (topo, crowd, mut rng) = setup();
        let rssi = associate(
            &topo,
            &crowd,
            AssocPolicy::StrongestRssi,
            Width::W80,
            &mut rng,
        );
        let aware = associate(
            &topo,
            &crowd,
            AssocPolicy::UtilizationAware,
            Width::W80,
            &mut rng,
        );
        assert!(
            aware.per_ap[0] < rssi.per_ap[0],
            "informed policy offloads the loud AP: {:?} vs {:?}",
            aware.per_ap,
            rssi.per_ap
        );
        assert!(
            aware.worst_client_bps() > rssi.worst_client_bps(),
            "worst client improves: {} vs {}",
            aware.worst_client_bps(),
            rssi.worst_client_bps()
        );
    }

    #[test]
    fn least_loaded_balances_counts() {
        let (topo, crowd, mut rng) = setup();
        let out = associate(
            &topo,
            &crowd,
            AssocPolicy::LeastLoaded,
            Width::W80,
            &mut rng,
        );
        let max = *out.per_ap.iter().max().unwrap();
        let min = *out.per_ap.iter().min().unwrap();
        assert!(max - min <= 2, "{:?}", out.per_ap);
    }

    #[test]
    fn out_of_range_clients_stay_unassociated() {
        let mut rng = Rng::new(2);
        let topo = topology::grid(1, 1, 10.0, 0.0, Band::Band5, &mut rng);
        let clients = vec![Point::new(10_000.0, 10_000.0)];
        let out = associate(
            &topo,
            &clients,
            AssocPolicy::StrongestRssi,
            Width::W80,
            &mut rng,
        );
        assert_eq!(out.chosen, vec![None]);
        assert!(out.expected_bps.is_empty());
    }

    #[test]
    fn every_associated_client_has_positive_throughput() {
        let (topo, crowd, mut rng) = setup();
        for policy in [
            AssocPolicy::StrongestRssi,
            AssocPolicy::LeastLoaded,
            AssocPolicy::UtilizationAware,
        ] {
            let out = associate(&topo, &crowd, policy, Width::W80, &mut rng);
            assert_eq!(out.expected_bps.len(), 40);
            assert!(out.expected_bps.iter().all(|&b| b > 0.0));
            assert_eq!(out.per_ap.iter().sum::<usize>(), 40);
        }
    }
}

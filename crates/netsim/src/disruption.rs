//! Client-side cost of channel switches (paper §4.3.1).
//!
//! A channel switch is not free: clients that support 802.11h Channel
//! Switch Announcements follow the AP after a few beacons; clients that
//! don't (or that miss the beacons) must notice the AP is gone, scan,
//! and re-associate — "usually around 5 seconds for laptops, and around
//! 8 seconds for mobile devices", which is why TurboCA trades optimality
//! for stability. This module turns a channel plan into client-seconds
//! of disruption, the quantity the switch penalty is protecting.

use chanassign::model::{NetworkView, Plan};
use sim::{Rng, SimDuration};

/// Client population assumptions for disruption accounting.
#[derive(Debug, Clone)]
pub struct DisruptionModel {
    /// Fraction of clients that honour CSA beacons.
    pub csa_support: f64,
    /// Probability a CSA-capable client still misses the announcement.
    pub csa_miss: f64,
    /// Off-air time when following a CSA (a few beacon intervals).
    pub csa_follow: SimDuration,
    /// Re-association outage for a laptop-class client.
    pub laptop_outage: SimDuration,
    /// Re-association outage for a mobile-class client.
    pub mobile_outage: SimDuration,
    /// Fraction of clients that are mobile-class.
    pub mobile_share: f64,
}

impl Default for DisruptionModel {
    fn default() -> Self {
        DisruptionModel {
            csa_support: 0.7,
            csa_miss: 0.1,
            csa_follow: SimDuration::from_millis(310),
            laptop_outage: SimDuration::from_secs(5),
            mobile_outage: SimDuration::from_secs(8),
            mobile_share: 0.5,
        }
    }
}

/// Outcome of applying a plan to a live network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisruptionReport {
    /// APs that changed channel.
    pub switches: usize,
    /// Clients that followed a CSA (sub-second blip).
    pub csa_followers: usize,
    /// Clients that had to rescan and re-associate.
    pub rescans: usize,
    /// Total client-seconds of lost connectivity.
    pub client_seconds: f64,
}

/// Sampled per-client disruption of moving the network from its current
/// assignment to `plan`. `clients_per_ap[v]` is the live client count on
/// AP `v`.
pub fn assess(
    model: &DisruptionModel,
    view: &NetworkView,
    plan: &Plan,
    clients_per_ap: &[usize],
    rng: &mut Rng,
) -> DisruptionReport {
    assert_eq!(view.len(), plan.channels.len());
    assert_eq!(view.len(), clients_per_ap.len());
    let mut report = DisruptionReport::default();
    for (v, &clients) in clients_per_ap.iter().enumerate() {
        if plan.channels[v] == view.aps[v].current {
            continue;
        }
        report.switches += 1;
        for _ in 0..clients {
            let follows_csa = rng.chance(model.csa_support) && !rng.chance(model.csa_miss);
            if follows_csa {
                report.csa_followers += 1;
                report.client_seconds += model.csa_follow.as_secs_f64();
            } else {
                report.rescans += 1;
                let outage = if rng.chance(model.mobile_share) {
                    model.mobile_outage
                } else {
                    model.laptop_outage
                };
                report.client_seconds += outage.as_secs_f64();
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use chanassign::model::ApReport;
    use phy80211::channels::{Band, Channel};

    fn view_with_channels(chs: &[u16]) -> NetworkView {
        NetworkView {
            band: Band::Band5,
            aps: chs
                .iter()
                .map(|&c| ApReport::idle_on(Channel::five(c)))
                .collect(),
        }
    }

    #[test]
    fn no_switches_no_disruption() {
        let view = view_with_channels(&[36, 40]);
        let plan = Plan::current(&view);
        let r = assess(
            &DisruptionModel::default(),
            &view,
            &plan,
            &[10, 10],
            &mut Rng::new(1),
        );
        assert_eq!(r, DisruptionReport::default());
    }

    #[test]
    fn switching_a_loaded_ap_costs_client_seconds() {
        let view = view_with_channels(&[36, 40]);
        let mut plan = Plan::current(&view);
        plan.channels[0] = Channel::five(149);
        let r = assess(
            &DisruptionModel::default(),
            &view,
            &plan,
            &[20, 20],
            &mut Rng::new(2),
        );
        assert_eq!(r.switches, 1);
        assert_eq!(r.csa_followers + r.rescans, 20, "only AP 0's clients");
        assert!(r.client_seconds > 0.0);
    }

    #[test]
    fn csa_support_slashes_the_cost() {
        let view = view_with_channels(&[36]);
        let mut plan = Plan::current(&view);
        plan.channels[0] = Channel::five(149);
        let run = |support: f64, seed: u64| {
            let model = DisruptionModel {
                csa_support: support,
                ..DisruptionModel::default()
            };
            assess(&model, &view, &plan, &[200], &mut Rng::new(seed)).client_seconds
        };
        let none = run(0.0, 3);
        let full = run(1.0, 4);
        // With everyone CSA-capable (10% miss), cost is dominated by the
        // 310ms follow blips instead of 5-8s rescans.
        assert!(full < none / 5.0, "full={full} none={none}");
    }

    #[test]
    fn mobile_heavy_populations_suffer_more() {
        let view = view_with_channels(&[36]);
        let mut plan = Plan::current(&view);
        plan.channels[0] = Channel::five(149);
        let run = |mobile: f64, seed: u64| {
            let model = DisruptionModel {
                csa_support: 0.0,
                mobile_share: mobile,
                ..DisruptionModel::default()
            };
            assess(&model, &view, &plan, &[500], &mut Rng::new(seed)).client_seconds
        };
        let laptops = run(0.0, 5);
        let mobiles = run(1.0, 6);
        assert!((laptops - 2500.0).abs() < 1.0, "{laptops}"); // 500 × 5s
        assert!((mobiles - 4000.0).abs() < 1.0, "{mobiles}"); // 500 × 8s
    }
}

//! AP placement and interference graphs (paper §3.2.3, Fig. 3).
//!
//! Generates floor-plan topologies (grid offices, random campus halls),
//! computes which APs can hear which over the indoor propagation model,
//! and counts *interferers* exactly as the paper defines them: "other
//! APs within transmission range on the same channel".

use phy80211::channels::{Band, Channel};
use phy80211::propagation::{Point, Propagation, Radio, CCA_THRESHOLD_DBM};
use sim::Rng;

/// A placed AP.
#[derive(Debug, Clone)]
pub struct PlacedAp {
    pub position: Point,
    pub radio: Radio,
}

/// A physical deployment: AP positions plus the band-specific audibility
/// graph (who can carrier-sense whom).
#[derive(Debug, Clone)]
pub struct Topology {
    pub aps: Vec<PlacedAp>,
    /// `audible[i]` = indices of APs whose transmissions AP i receives
    /// above the CCA threshold (band-dependent; symmetric by
    /// construction).
    pub audible: Vec<Vec<usize>>,
    pub band: Band,
}

/// Generate a jittered grid of APs (office/floor deployment): `cols ×
/// rows` APs spaced `spacing` meters apart, each displaced by up to
/// `jitter` meters. Audibility uses the CCA threshold.
pub fn grid(
    cols: usize,
    rows: usize,
    spacing: f64,
    jitter: f64,
    band: Band,
    rng: &mut Rng,
) -> Topology {
    grid_with_threshold(cols, rows, spacing, jitter, band, CCA_THRESHOLD_DBM, rng)
}

/// [`grid`] with an explicit audibility threshold (dBm): use a higher
/// value (e.g. −75) to count only contention-relevant neighbors rather
/// than everything above preamble-detect.
pub fn grid_with_threshold(
    cols: usize,
    rows: usize,
    spacing: f64,
    jitter: f64,
    band: Band,
    threshold_dbm: f64,
    rng: &mut Rng,
) -> Topology {
    let mut aps = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            let x = c as f64 * spacing + rng.uniform(-jitter, jitter);
            let y = r as f64 * spacing + rng.uniform(-jitter, jitter);
            aps.push(PlacedAp {
                position: Point::new(x, y),
                radio: Radio::AP_DEFAULT,
            });
        }
    }
    build(aps, band, threshold_dbm, rng)
}

/// Uniform random placement over a `w × h` meter area (campus halls,
/// museum galleries). Audibility uses the CCA threshold.
pub fn random_area(n: usize, w: f64, h: f64, band: Band, rng: &mut Rng) -> Topology {
    random_area_with_threshold(n, w, h, band, CCA_THRESHOLD_DBM, rng)
}

/// [`random_area`] with an explicit audibility threshold (dBm).
pub fn random_area_with_threshold(
    n: usize,
    w: f64,
    h: f64,
    band: Band,
    threshold_dbm: f64,
    rng: &mut Rng,
) -> Topology {
    let aps = (0..n)
        .map(|_| PlacedAp {
            position: Point::new(rng.uniform(0.0, w), rng.uniform(0.0, h)),
            radio: Radio::AP_DEFAULT,
        })
        .collect();
    build(aps, band, threshold_dbm, rng)
}

fn build(aps: Vec<PlacedAp>, band: Band, threshold_dbm: f64, rng: &mut Rng) -> Topology {
    let prop = Propagation::indoor(band);
    let n = aps.len();
    let mut audible = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = aps[i].position.distance(&aps[j].position);
            // One symmetric shadowing draw per link.
            let pl = prop.path_loss_shadowed_db(d, rng);
            let rssi = aps[i].radio.rssi_dbm(pl);
            if rssi >= threshold_dbm {
                audible[i].push(j);
                audible[j].push(i);
            }
        }
    }
    Topology { aps, audible, band }
}

impl Topology {
    pub fn len(&self) -> usize {
        self.aps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.aps.is_empty()
    }

    /// Interferer count per AP given a channel assignment: audible APs
    /// whose channel overlaps (the paper's Fig. 3 metric).
    pub fn interferers(&self, channels: &[Channel]) -> Vec<usize> {
        assert_eq!(channels.len(), self.len());
        (0..self.len())
            .map(|i| {
                self.audible[i]
                    .iter()
                    .filter(|&&j| channels[i].overlaps(&channels[j]))
                    .count()
            })
            .collect()
    }

    /// Mean audible-neighbor degree (channel-agnostic density).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.audible.iter().map(|v| v.len()).sum::<usize>() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phy80211::channels::Width;

    #[test]
    fn grid_places_all_aps() {
        let mut rng = Rng::new(1);
        let t = grid(4, 3, 20.0, 2.0, Band::Band5, &mut rng);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn audibility_is_symmetric() {
        let mut rng = Rng::new(2);
        let t = random_area(30, 100.0, 60.0, Band::Band5, &mut rng);
        for i in 0..t.len() {
            for &j in &t.audible[i] {
                assert!(t.audible[j].contains(&i));
            }
        }
    }

    #[test]
    fn closer_spacing_means_denser_graph() {
        let mut rng = Rng::new(3);
        let dense = grid(5, 5, 10.0, 1.0, Band::Band5, &mut rng);
        let sparse = grid(5, 5, 60.0, 1.0, Band::Band5, &mut rng);
        assert!(dense.mean_degree() > sparse.mean_degree());
    }

    #[test]
    fn two4_hears_farther_than_5ghz() {
        // Lower path loss at 2.4 GHz -> more audible neighbors for the
        // same geometry (one reason 2.4 GHz sees more interferers).
        let mut r1 = Rng::new(4);
        let mut r2 = Rng::new(4);
        let t24 = grid(6, 6, 25.0, 1.0, Band::Band2_4, &mut r1);
        let t5 = grid(6, 6, 25.0, 1.0, Band::Band5, &mut r2);
        assert!(t24.mean_degree() > t5.mean_degree());
    }

    #[test]
    fn interferers_depend_on_channels() {
        let mut rng = Rng::new(5);
        let t = grid(3, 3, 10.0, 0.5, Band::Band5, &mut rng);
        // Everyone on channel 36: interferers = audible degree.
        let same: Vec<Channel> = (0..t.len()).map(|_| Channel::five(36)).collect();
        let i_same = t.interferers(&same);
        for (i, &cnt) in i_same.iter().enumerate() {
            assert_eq!(cnt, t.audible[i].len());
        }
        // Disjoint channels for each AP: zero interferers (9 APs, but
        // only distinct 20MHz channels needed).
        let pool = phy80211::channels::all_channels(Band::Band5, Width::W20);
        let distinct: Vec<Channel> = (0..t.len()).map(|i| pool[i]).collect();
        assert!(t.interferers(&distinct).iter().all(|&c| c == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = random_area(20, 80.0, 80.0, Band::Band5, &mut Rng::new(7));
        let t2 = random_area(20, 80.0, 80.0, Band::Band5, &mut Rng::new(7));
        assert_eq!(t1.audible, t2.audible);
    }
}

//! Diurnal office load model — the shape behind the paper's Fig. 6
//! snapshot: associated clients move gradually through the day while
//! data usage and channel utilization are bursty, including a sudden
//! ~30-minute surge (the paper's 2 pm example).

use sim::{Rng, SimDuration, SimTime};

/// One sampled point of the AP-day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaySample {
    pub at: SimTime,
    /// Associated clients passing traffic.
    pub clients: f64,
    /// Data usage over the sample interval, Mbit.
    pub usage_mbit: f64,
    /// Channel utilization 0..1.
    pub utilization: f64,
}

/// Parameters of the office day.
#[derive(Debug, Clone)]
pub struct OfficeDay {
    /// Peak concurrent clients (mid-day plateau).
    pub peak_clients: f64,
    /// Mean per-client offered load at the plateau, Mbit per 5 min.
    pub per_client_mbit: f64,
    /// Scheduled surge start (the paper's 2 pm burst), hours from
    /// midnight, and its duration in minutes.
    pub surge_at_h: f64,
    pub surge_minutes: f64,
    /// Surge multiplier on usage.
    pub surge_factor: f64,
    /// Sampling interval.
    pub interval: SimDuration,
}

impl Default for OfficeDay {
    fn default() -> Self {
        OfficeDay {
            peak_clients: 30.0,
            per_client_mbit: 60.0,
            surge_at_h: 14.0,
            surge_minutes: 30.0,
            surge_factor: 4.0,
            interval: SimDuration::from_mins(5),
        }
    }
}

/// Occupancy envelope: 0 overnight, ramp 7–10 am, plateau with a lunch
/// dip, ramp down 16–19.
fn occupancy(hour: f64) -> f64 {
    let ramp_up = ((hour - 7.0) / 3.0).clamp(0.0, 1.0);
    let ramp_down = 1.0 - ((hour - 16.0) / 3.0).clamp(0.0, 1.0);
    let lunch_dip = if (12.0..13.0).contains(&hour) {
        0.75
    } else {
        1.0
    };
    (ramp_up * ramp_down * lunch_dip).clamp(0.0, 1.0)
}

impl OfficeDay {
    /// Generate a full day of samples.
    pub fn generate(&self, rng: &mut Rng) -> Vec<DaySample> {
        let day = SimDuration::from_hours(24);
        let steps = day.as_nanos() / self.interval.as_nanos();
        let mut out = Vec::with_capacity(steps as usize);
        for k in 0..steps {
            let at = SimTime::ZERO + self.interval * k;
            let hour = at.as_nanos() as f64 / 3.6e12;
            let occ = occupancy(hour);
            // Clients move gradually: occupancy envelope + small noise.
            let clients = (self.peak_clients * occ * rng.uniform(0.9, 1.1)).max(0.0);
            // Usage is bursty: lognormal per-sample demand...
            let mut usage = clients
                * self.per_client_mbit
                * (0.9 * rng.standard_normal()).exp()
                * occ.max(0.05);
            // ...plus the scheduled surge.
            let in_surge =
                hour >= self.surge_at_h && hour < self.surge_at_h + self.surge_minutes / 60.0;
            if in_surge {
                usage *= self.surge_factor;
            }
            // Utilization tracks usage against a nominal channel capacity
            // (20 MHz reference ≈ 4.2 Gbit per 5 min of airtime at
            // ~140 Mbps effective), plus ambient neighbors.
            let capacity_mbit = 140.0 * self.interval.as_secs_f64() * 8.0 / 8.0;
            let util = (usage / capacity_mbit + rng.uniform(0.02, 0.08)).clamp(0.0, 1.0);
            out.push(DaySample {
                at,
                clients,
                usage_mbit: usage,
                utilization: util,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> Vec<DaySample> {
        OfficeDay::default().generate(&mut Rng::new(42))
    }

    #[test]
    fn one_day_of_5min_samples() {
        let d = day();
        assert_eq!(d.len(), 24 * 12);
        assert_eq!(d[0].at, SimTime::ZERO);
    }

    #[test]
    fn night_is_quiet_midday_is_busy() {
        let d = day();
        let at_hour = |h: usize| &d[h * 12];
        assert!(at_hour(3).clients < 1.0, "{:?}", at_hour(3));
        assert!(at_hour(11).clients > 20.0, "{:?}", at_hour(11));
        assert!(at_hour(22).clients < 1.0);
    }

    #[test]
    fn surge_shows_in_usage_and_utilization() {
        let d = day();
        let window_mean = |from_h: f64, to_h: f64, f: &dyn Fn(&DaySample) -> f64| {
            let xs: Vec<f64> = d
                .iter()
                .filter(|s| {
                    let h = s.at.as_nanos() as f64 / 3.6e12;
                    h >= from_h && h < to_h
                })
                .map(f)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let surge_usage = window_mean(14.0, 14.5, &|s| s.usage_mbit);
        let before_usage = window_mean(13.0, 14.0, &|s| s.usage_mbit);
        assert!(
            surge_usage > 2.0 * before_usage,
            "{surge_usage} vs {before_usage}"
        );
        let surge_util = window_mean(14.0, 14.5, &|s| s.utilization);
        let before_util = window_mean(13.0, 14.0, &|s| s.utilization);
        assert!(surge_util > before_util);
        // Clients do NOT surge (the paper's point: usage moves faster
        // than association counts).
        let surge_clients = window_mean(14.0, 14.5, &|s| s.clients);
        let before_clients = window_mean(13.0, 14.0, &|s| s.clients);
        assert!((surge_clients / before_clients - 1.0).abs() < 0.25);
    }

    #[test]
    fn utilization_bounded() {
        for s in day() {
            assert!((0.0..=1.0).contains(&s.utilization));
            assert!(s.usage_mbit >= 0.0);
        }
    }

    #[test]
    fn lunch_dip_visible_in_clients() {
        let d = day();
        let mean_clients = |h: f64| {
            let xs: Vec<f64> = d
                .iter()
                .filter(|s| {
                    let hh = s.at.as_nanos() as f64 / 3.6e12;
                    hh >= h && hh < h + 1.0
                })
                .map(|s| s.clients)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean_clients(12.0) < mean_clients(11.0));
        assert!(mean_clients(12.0) < mean_clients(13.5));
    }
}

//! The dedicated scanning radio (paper §2.1): every Meraki 802.11ac AP
//! carries a single-antenna radio that "scans all available channels
//! over 150 ms intervals, gathering neighbor and channel information."
//! This module models that pipeline — dwell-limited sampling noise and
//! beacon-detection probability included — and produces the per-AP
//! reports the planner consumes, closing the measure→plan loop with
//! realistic (imperfect) inputs instead of oracle ones.

use crate::topology::Topology;
use phy80211::channels::{Band, US_2_4GHZ, US_5GHZ_20};
use sim::{Rng, SimDuration};
use std::collections::BTreeMap;

/// One channel's worth of observations from one dwell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelObservation {
    pub channel: u16,
    /// Estimated busy fraction during the dwell.
    pub busy: f64,
    /// In-network neighbor APs heard on this channel (index, RSSI dBm).
    pub neighbors_heard: Vec<(usize, f64)>,
}

/// A full scan cycle's report from one AP.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    pub observations: Vec<ChannelObservation>,
}

impl ScanReport {
    /// Busy estimate for a channel (None if never dwelled).
    pub fn busy_on(&self, channel: u16) -> Option<f64> {
        self.observations
            .iter()
            .find(|o| o.channel == channel)
            .map(|o| o.busy)
    }

    /// Every distinct neighbor heard across channels.
    pub fn neighbors(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .observations
            .iter()
            .flat_map(|o| o.neighbors_heard.iter().map(|&(n, _)| n))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    /// Dwell per channel (the paper: 150 ms).
    pub dwell: SimDuration,
    /// Beacon interval of neighbor APs (102.4 ms nominal).
    pub beacon_interval: SimDuration,
    /// Std-dev of the busy-fraction estimate from one dwell.
    pub busy_noise: f64,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            dwell: SimDuration::from_millis(150),
            beacon_interval: SimDuration::from_micros(102_400),
            busy_noise: 0.06,
        }
    }
}

impl ScannerConfig {
    /// Probability of catching at least one beacon from an active
    /// neighbor during one dwell: dwell / beacon-interval, capped.
    pub fn beacon_catch_prob(&self) -> f64 {
        (self.dwell.as_secs_f64() / self.beacon_interval.as_secs_f64()).min(1.0)
    }

    /// Duration of one full scan cycle over a band's channel list.
    pub fn cycle_duration(&self, band: Band) -> SimDuration {
        let n = match band {
            Band::Band2_4 => US_2_4GHZ.len(),
            Band::Band5 => US_5GHZ_20.len(),
        } as u64;
        self.dwell * n
    }
}

/// Run one scan cycle for AP `ap` over `band`, given ground truth:
/// per-channel external busy fractions and the audible topology with
/// each neighbor's current (primary) channel.
pub fn scan_cycle(
    cfg: &ScannerConfig,
    topo: &Topology,
    ap: usize,
    true_busy: &BTreeMap<u16, f64>,
    neighbor_channels: &[u16],
    rng: &mut Rng,
) -> ScanReport {
    let channels: &[u16] = match topo.band {
        Band::Band2_4 => &US_2_4GHZ,
        Band::Band5 => &US_5GHZ_20,
    };
    let catch = cfg.beacon_catch_prob();
    let mut observations = Vec::with_capacity(channels.len());
    for &ch in channels {
        let truth = true_busy.get(&ch).copied().unwrap_or(0.0);
        let busy = (truth + rng.normal(0.0, cfg.busy_noise)).clamp(0.0, 1.0);
        let mut heard = Vec::new();
        for &n in &topo.audible[ap] {
            if neighbor_channels[n] == ch && rng.chance(catch) {
                // RSSI estimate with single-antenna measurement noise.
                let d = topo.aps[ap].position.distance(&topo.aps[n].position);
                let prop = phy80211::propagation::Propagation::indoor(topo.band);
                let rssi = topo.aps[n].radio.rssi_dbm(prop.path_loss_db(d)) + rng.normal(0.0, 2.0);
                heard.push((n, rssi));
            }
        }
        observations.push(ChannelObservation {
            channel: ch,
            busy,
            neighbors_heard: heard,
        });
    }
    ScanReport { observations }
}

/// Merge several cycles into smoothed estimates (EWMA over cycles) —
/// what the AP actually reports to the backend between polls.
pub fn merge_cycles(cycles: &[ScanReport], alpha: f64) -> ScanReport {
    let mut busy: BTreeMap<u16, f64> = BTreeMap::new();
    let mut neigh: BTreeMap<u16, BTreeMap<usize, f64>> = BTreeMap::new();
    for cycle in cycles {
        for o in &cycle.observations {
            let e = busy.entry(o.channel).or_insert(o.busy);
            *e = (1.0 - alpha) * *e + alpha * o.busy;
            let m = neigh.entry(o.channel).or_default();
            for &(n, rssi) in &o.neighbors_heard {
                let r = m.entry(n).or_insert(rssi);
                *r = (1.0 - alpha) * *r + alpha * rssi;
            }
        }
    }
    ScanReport {
        observations: busy
            .into_iter()
            .map(|(channel, b)| ChannelObservation {
                channel,
                busy: b,
                neighbors_heard: neigh
                    .remove(&channel)
                    .unwrap_or_default()
                    .into_iter()
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn setup() -> (Topology, BTreeMap<u16, f64>, Vec<u16>) {
        let mut rng = Rng::new(1);
        let topo = topology::grid(3, 3, 12.0, 1.0, Band::Band5, &mut rng);
        let mut busy = BTreeMap::new();
        busy.insert(36, 0.6);
        busy.insert(149, 0.1);
        let neighbor_channels = vec![36; topo.len()];
        (topo, busy, neighbor_channels)
    }

    #[test]
    fn cycle_covers_every_channel() {
        let (topo, busy, chans) = setup();
        let mut rng = Rng::new(2);
        let cfg = ScannerConfig::default();
        let r = scan_cycle(&cfg, &topo, 0, &busy, &chans, &mut rng);
        assert_eq!(r.observations.len(), US_5GHZ_20.len());
        assert_eq!(
            cfg.cycle_duration(Band::Band5),
            SimDuration::from_millis(150 * 25)
        );
    }

    #[test]
    fn busy_estimates_converge_with_merging() {
        let (topo, busy, chans) = setup();
        let mut rng = Rng::new(3);
        let cfg = ScannerConfig::default();
        let cycles: Vec<ScanReport> = (0..40)
            .map(|_| scan_cycle(&cfg, &topo, 0, &busy, &chans, &mut rng))
            .collect();
        let merged = merge_cycles(&cycles, 0.2);
        let est = merged.busy_on(36).unwrap();
        assert!((est - 0.6).abs() < 0.08, "{est}");
        let est = merged.busy_on(149).unwrap();
        assert!((est - 0.1).abs() < 0.08, "{est}");
        let est = merged.busy_on(100).unwrap();
        assert!(est < 0.12, "idle channel reads near zero: {est}");
    }

    #[test]
    fn neighbors_on_our_channel_are_heard_eventually() {
        let (topo, busy, chans) = setup();
        let mut rng = Rng::new(4);
        let cfg = ScannerConfig::default();
        let cycles: Vec<ScanReport> = (0..10)
            .map(|_| scan_cycle(&cfg, &topo, 0, &busy, &chans, &mut rng))
            .collect();
        let merged = merge_cycles(&cycles, 0.5);
        let heard = merged.neighbors();
        // All audible neighbors sit on ch36; over 10 cycles the catch
        // probability (~1.0 at 150ms dwell vs 102.4ms beacons) finds them.
        assert_eq!(heard, {
            let mut v = topo.audible[0].clone();
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn single_dwell_catches_most_beacons() {
        let cfg = ScannerConfig::default();
        assert_eq!(
            cfg.beacon_catch_prob(),
            1.0,
            "150ms dwell > 102.4ms interval"
        );
        let short = ScannerConfig {
            dwell: SimDuration::from_millis(50),
            ..ScannerConfig::default()
        };
        assert!((short.beacon_catch_prob() - 0.488).abs() < 0.01);
    }

    #[test]
    fn neighbors_off_channel_are_not_heard_there() {
        let (topo, busy, mut chans) = setup();
        // Neighbors all on 149; dwell on 36 must hear nobody.
        for c in chans.iter_mut() {
            *c = 149;
        }
        let mut rng = Rng::new(5);
        let cfg = ScannerConfig::default();
        let r = scan_cycle(&cfg, &topo, 0, &busy, &chans, &mut rng);
        let on36 = r.observations.iter().find(|o| o.channel == 36).unwrap();
        assert!(on36.neighbors_heard.is_empty());
        let on149 = r.observations.iter().find(|o| o.channel == 149).unwrap();
        assert!(!on149.neighbors_heard.is_empty());
    }
}

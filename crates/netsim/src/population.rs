//! Client-device capability populations (paper §3.2.1, Fig. 1) and AP
//! channel-width configurations (Table 1).
//!
//! The paper's Fig. 1 reports what 1.7 M client devices *advertise* to
//! APs, in 2015 vs 2017. Those marginals parameterize this generator;
//! the Fig. 1 experiment then runs the measurement pipeline over a
//! synthetic population and verifies the pipeline recovers them
//! (see DESIGN.md §1 on what this does and does not validate).

use phy80211::channels::Width;
use sim::Rng;

/// 802.11 generation a client implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Standard {
    /// 802.11g (2.4 GHz only).
    G,
    /// 802.11n.
    N,
    /// 802.11ac.
    Ac,
}

/// Capabilities a client advertises in its association request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientCaps {
    pub standard: Standard,
    /// Supports the 5 GHz band at all.
    pub five_ghz: bool,
    /// Maximum channel width.
    pub max_width: Width,
    /// Spatial streams.
    pub nss: u8,
}

impl ClientCaps {
    /// Maximum PHY rate this client can reach (SGI), in bps.
    pub fn max_rate_bps(&self) -> u64 {
        use phy80211::mcs::{ht_rate_bps, vht_rate_bps, GuardInterval, Mcs};
        match self.standard {
            Standard::G => 54_000_000,
            Standard::N => ht_rate_bps(
                Mcs(7),
                self.nss,
                self.max_width.min(Width::W40),
                GuardInterval::Short,
            )
            .unwrap_or(54_000_000),
            Standard::Ac => {
                // Highest valid MCS at this (nss, width).
                for m in (0..=9u8).rev() {
                    if let Some(r) =
                        vht_rate_bps(Mcs(m), self.nss, self.max_width, GuardInterval::Short)
                    {
                        return r;
                    }
                }
                54_000_000
            }
        }
    }
}

/// Marginals of the advertised-capability population for one year.
#[derive(Debug, Clone, Copy)]
pub struct PopulationProfile {
    /// Fraction of clients that are 802.11ac.
    pub ac_share: f64,
    /// Fraction that support only 2.4 GHz.
    pub two4_only_share: f64,
    /// Fraction with ≥ 2 spatial streams.
    pub two_stream_share: f64,
    /// Fraction supporting 40 MHz (among 5 GHz-capable).
    pub w40_share: f64,
    /// Fraction supporting 80 MHz (subset of ac).
    pub w80_share: f64,
}

impl PopulationProfile {
    /// The paper's 2015 numbers (Fig. 1 / ref.\[18\]).
    pub const Y2015: PopulationProfile = PopulationProfile {
        ac_share: 0.18,
        two4_only_share: 0.40,
        two_stream_share: 0.19,
        w40_share: 0.45,
        w80_share: 0.18,
    };

    /// The paper's 2017 numbers.
    pub const Y2017: PopulationProfile = PopulationProfile {
        ac_share: 0.46,
        two4_only_share: 0.40,
        two_stream_share: 0.37,
        w40_share: 0.80,
        w80_share: 0.46,
    };

    /// Draw one client.
    pub fn sample(&self, rng: &mut Rng) -> ClientCaps {
        let two4_only = rng.chance(self.two4_only_share);
        // 2.4-only devices cannot be 802.11ac.
        let ac = !two4_only && rng.chance(self.ac_share / (1.0 - self.two4_only_share));
        let standard = if ac {
            Standard::Ac
        } else if two4_only && rng.chance(0.05) {
            Standard::G
        } else {
            Standard::N
        };
        let nss = if rng.chance(self.two_stream_share) {
            if rng.chance(0.15) {
                3
            } else {
                2
            }
        } else {
            1
        };
        let max_width = if two4_only {
            // Fig. 1 counts the *advertised* 40 MHz capability bit, and
            // most 2.4 GHz-only devices advertise HT40 even though dense
            // deployments never run 40 MHz in 2.4 GHz.
            if rng.chance(self.w40_share * 0.72) {
                Width::W40
            } else {
                Width::W20
            }
        } else if ac && rng.chance(self.w80_share / self.ac_share.max(1e-9)) {
            Width::W80
        } else if rng.chance(self.w40_share) {
            Width::W40
        } else {
            Width::W20
        };
        ClientCaps {
            standard,
            five_ghz: !two4_only,
            max_width,
            nss,
        }
    }

    /// Generate a population of `n` clients.
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Vec<ClientCaps> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Advertised-capability shares recovered from a population — the
/// measurement side of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationStats {
    pub ac_share: f64,
    pub two4_only_share: f64,
    pub two_stream_share: f64,
    pub w40_share: f64,
    pub w80_share: f64,
}

/// Measure a population.
pub fn measure(pop: &[ClientCaps]) -> PopulationStats {
    let n = pop.len().max(1) as f64;
    let frac = |f: &dyn Fn(&ClientCaps) -> bool| pop.iter().filter(|c| f(c)).count() as f64 / n;
    PopulationStats {
        ac_share: frac(&|c| c.standard == Standard::Ac),
        two4_only_share: frac(&|c| !c.five_ghz),
        two_stream_share: frac(&|c| c.nss >= 2),
        w40_share: frac(&|c| c.max_width >= Width::W40),
        w80_share: frac(&|c| c.max_width >= Width::W80),
    }
}

/// Table 1: administrator width configuration for 80 MHz-capable APs.
/// Returns the (20, 40, 80 MHz) shares for a network of `n_aps`.
pub fn width_config_shares(n_aps: usize) -> (f64, f64, f64) {
    if n_aps > 10 {
        (0.173, 0.194, 0.633)
    } else {
        (0.149, 0.191, 0.660)
    }
}

/// Draw a configured width for one 80 MHz-capable AP.
pub fn sample_width_config(n_aps: usize, rng: &mut Rng) -> Width {
    let (w20, w40, _) = width_config_shares(n_aps);
    let x = rng.f64();
    if x < w20 {
        Width::W20
    } else if x < w20 + w40 {
        Width::W40
    } else {
        Width::W80
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y2017_population_recovers_marginals() {
        let mut rng = Rng::new(1);
        let pop = PopulationProfile::Y2017.generate(100_000, &mut rng);
        let s = measure(&pop);
        assert!((s.ac_share - 0.46).abs() < 0.02, "{s:?}");
        assert!((s.two4_only_share - 0.40).abs() < 0.02, "{s:?}");
        assert!((s.two_stream_share - 0.37).abs() < 0.02, "{s:?}");
    }

    #[test]
    fn y2015_vs_y2017_trend() {
        let mut rng = Rng::new(2);
        let s15 = measure(&PopulationProfile::Y2015.generate(50_000, &mut rng));
        let s17 = measure(&PopulationProfile::Y2017.generate(50_000, &mut rng));
        assert!(s17.ac_share > 2.0 * s15.ac_share, "ac grew 18->46");
        assert!(s17.two_stream_share > 1.5 * s15.two_stream_share);
        assert!(
            (s17.two4_only_share - s15.two4_only_share).abs() < 0.03,
            "2.4-only steady"
        );
        assert!(s17.w80_share > s15.w80_share);
    }

    #[test]
    fn consistency_constraints_hold() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let c = PopulationProfile::Y2017.sample(&mut rng);
            if !c.five_ghz {
                assert_ne!(c.standard, Standard::Ac, "2.4-only can't be ac");
                assert!(c.max_width <= Width::W40, "HT40 at most in 2.4GHz");
            }
            if c.max_width == Width::W80 {
                assert_eq!(c.standard, Standard::Ac, "80MHz implies ac");
            }
            assert!((1..=3).contains(&c.nss));
        }
    }

    #[test]
    fn max_rates_match_paper_typicals() {
        // "typical 802.11n/ac clients will have maximum bit rates of
        // 300 Mbps and 867 Mbps respectively".
        let n_client = ClientCaps {
            standard: Standard::N,
            five_ghz: true,
            max_width: Width::W40,
            nss: 2,
        };
        assert_eq!(n_client.max_rate_bps(), 300_000_000);
        let ac_client = ClientCaps {
            standard: Standard::Ac,
            five_ghz: true,
            max_width: Width::W80,
            nss: 2,
        };
        assert_eq!(ac_client.max_rate_bps(), 866_666_666);
        let g_client = ClientCaps {
            standard: Standard::G,
            five_ghz: false,
            max_width: Width::W20,
            nss: 1,
        };
        assert_eq!(g_client.max_rate_bps(), 54_000_000);
    }

    #[test]
    fn width_config_matches_table1() {
        let (a, b, c) = width_config_shares(5);
        assert!((a + b + c - 1.0).abs() < 0.001);
        assert_eq!(c, 0.660);
        let (_, _, c_large) = width_config_shares(50);
        assert_eq!(c_large, 0.633);
        let mut rng = Rng::new(4);
        let n = 50_000;
        let narrowed = (0..n)
            .filter(|_| sample_width_config(50, &mut rng) != Width::W80)
            .count() as f64
            / n as f64;
        assert!((narrowed - 0.367).abs() < 0.01, "{narrowed}");
    }
}

//! Network-level evaluation of a channel plan — the model behind the
//! paper's §4.6 results (Table 2, Figs. 7–9).
//!
//! Simulating 600 APs packet-by-packet for two weeks is neither feasible
//! nor necessary: the §4.6 metrics are functions of *medium contention*,
//! which the planner's own airtime/capacity model captures. This module
//! turns (view, plan, client population) into the same observable
//! samples the paper collects:
//!
//! * **RSSI** per client — position-driven, plan-independent (which is
//!   exactly the paper's point in Fig. 7: RSSI does not reflect load);
//! * **TCP latency** per flow — medium-access delay scaled by the AP's
//!   airtime share, plus the plan-independent heavy tail (> 400 ms) the
//!   paper attributes to non-responsive clients;
//! * **bit-rate efficiency** per client — the SNR-driven ideal rate
//!   degraded by co-channel contention, normalized by the association's
//!   max rate (§4.6.2's metric);
//! * **deliverable goodput** per AP — capacity × airtime share, the
//!   integrand for Table 2's usage numbers.

use crate::population::ClientCaps;
use chanassign::metrics::{airtime, capacity};
use chanassign::model::{NetworkView, Plan};
use phy80211::channels::{Channel, Width};
use phy80211::propagation::{noise_floor_dbm, Propagation, Radio};
use phy80211::rate::{bitrate_efficiency, IdealSelector};
use sim::Rng;

/// Tunables for the evaluation model.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Base AP-to-client distance distribution (mean, spread) in meters.
    pub client_distance_mean_m: f64,
    pub client_distance_spread_m: f64,
    /// Base medium service latency with a perfectly clean channel, ms.
    pub base_latency_ms: f64,
    /// Probability of a plan-independent pathological latency sample
    /// (the paper's > 400 ms tail from stuck clients).
    pub heavy_tail_prob: f64,
    /// dB of effective-SNR degradation per overlapping in-network
    /// neighbor (collision/retry pressure on rate adaptation).
    pub neighbor_penalty_db: f64,
    /// dB of degradation per unit of external channel utilization.
    pub external_penalty_db: f64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            client_distance_mean_m: 12.0,
            client_distance_spread_m: 6.0,
            base_latency_ms: 6.0,
            heavy_tail_prob: 0.04,
            neighbor_penalty_db: 3.0,
            external_penalty_db: 8.0,
        }
    }
}

/// Evaluation output: raw samples, ready for CDF/PDF plotting.
#[derive(Debug, Clone, Default)]
pub struct NetworkMetrics {
    /// Per-client RSSI, dBm (Fig. 7).
    pub rssi_dbm: Vec<f64>,
    /// Per-flow TCP latency, ms (Fig. 8).
    pub tcp_latency_ms: Vec<f64>,
    /// Per-client bit-rate efficiency 0..1 (Fig. 9).
    pub bitrate_efficiency: Vec<f64>,
    /// Per-AP deliverable goodput, Mbps (Table 2 integrand).
    pub ap_goodput_mbps: Vec<f64>,
    /// Channel switches this plan would cause.
    pub switches: usize,
}

/// Evaluate a plan over a network.
pub fn evaluate(
    view: &NetworkView,
    plan: &Plan,
    caps_per_ap: &[Vec<ClientCaps>],
    opts: &EvalOptions,
    rng: &mut Rng,
) -> NetworkMetrics {
    assert_eq!(view.len(), plan.channels.len());
    assert_eq!(view.len(), caps_per_ap.len());
    let channels: Vec<Option<Channel>> = plan.channels.iter().copied().map(Some).collect();
    let prop = Propagation::indoor(view.band);
    let mut out = NetworkMetrics {
        switches: plan.switches_from_current(view),
        ..NetworkMetrics::default()
    };

    for (v, ap_caps) in caps_per_ap.iter().enumerate() {
        let ch = plan.channels[v];
        // Airtime share and capacity from the planner's own model — the
        // plan quality propagates into every sample below.
        let share = airtime(view, &channels, v, ch).max(0.01);
        let cap_factor = capacity(view, v, ch);
        let overlap_neighbors = view.aps[v]
            .neighbors
            .iter()
            .filter(|&&n| plan.channels[n].overlaps(&ch))
            .count();
        let ext_busy: f64 = ch
            .subchannel_numbers()
            .map(|subs| {
                subs.iter()
                    .map(|&s| view.aps[v].external_busy_on(s))
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);

        // The AP's own max rate at the plan width.
        let ap_sel = IdealSelector::new(ch.width, 3);
        let mut ap_client_rates = Vec::new();

        for c in ap_caps.iter() {
            // RSSI from a drawn distance (plan-independent).
            let d = (opts.client_distance_mean_m
                + opts.client_distance_spread_m * rng.standard_normal())
            .clamp(1.0, 60.0);
            let pl = prop.path_loss_shadowed_db(d, rng);
            let rssi = Radio::AP_DEFAULT.rssi_dbm(pl);
            out.rssi_dbm.push(rssi);

            // Effective SNR after contention pressure.
            let width = effective_width(ch, c);
            let snr = rssi
                - noise_floor_dbm(width)
                - opts.neighbor_penalty_db * overlap_neighbors as f64
                - opts.external_penalty_db * ext_busy;
            let sel = IdealSelector::new(width, c.nss.min(3));
            let achieved = sel.select(snr);
            ap_client_rates.push(achieved.bps);
            let eff = bitrate_efficiency(achieved.bps, ap_sel.max_rate_bps(), c.max_rate_bps());
            out.bitrate_efficiency.push(eff);

            // TCP latency: queueing + access delay inflates as the
            // airtime share shrinks; lognormal service noise on top.
            let lat = if rng.chance(opts.heavy_tail_prob) {
                rng.uniform(400.0, 3_000.0)
            } else {
                opts.base_latency_ms / share * (0.5 * rng.standard_normal()).exp()
            };
            out.tcp_latency_ms.push(lat);
        }

        // Deliverable goodput: share of airtime × mean client rate ×
        // a MAC-efficiency constant, floored by the capacity factor.
        let mean_rate = if ap_client_rates.is_empty() {
            0.0
        } else {
            ap_client_rates.iter().sum::<u64>() as f64 / ap_client_rates.len() as f64
        };
        let goodput = share * mean_rate * 0.65 / 1e6 * cap_factor.min(ch.width.mhz() as f64 / 20.0)
            / (ch.width.mhz() as f64 / 20.0);
        out.ap_goodput_mbps.push(goodput);
    }
    out
}

/// The width actually used by an association: min(plan width, client max).
fn effective_width(ch: Channel, c: &ClientCaps) -> Width {
    ch.width.min(c.max_width)
}

/// Integrate per-AP goodput over a diurnal demand envelope into daily
/// usage (TB), applying an optional uplink cap (Gbps) at the network
/// level — Table 2's quantity.
pub fn daily_usage_tb(
    ap_goodput_mbps: &[f64],
    demand_fraction_by_hour: &[f64; 24],
    uplink_gbps: Option<f64>,
) -> f64 {
    let mut total_bits = 0.0;
    for &frac in demand_fraction_by_hour {
        let offered_mbps: f64 = ap_goodput_mbps.iter().map(|g| g * frac).sum();
        let delivered_mbps = match uplink_gbps {
            Some(cap) => offered_mbps.min(cap * 1e3),
            None => offered_mbps,
        };
        total_bits += delivered_mbps * 1e6 * 3_600.0;
    }
    total_bits / 8.0 / 1e12
}

/// A typical enterprise demand envelope (fraction of capacity demanded
/// per hour of the day).
pub const OFFICE_DEMAND: [f64; 24] = [
    0.02, 0.02, 0.02, 0.02, 0.02, 0.03, 0.05, 0.15, 0.35, 0.55, 0.65, 0.70, 0.55, 0.65, 0.70, 0.65,
    0.55, 0.40, 0.25, 0.15, 0.10, 0.06, 0.04, 0.03,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{to_view, ViewOptions};
    use crate::topology;
    use chanassign::turboca::{ScheduleTier, TurboCa};
    use phy80211::channels::Band;
    use telemetry::stats::median;

    fn setup(seed: u64) -> (NetworkView, Vec<Vec<ClientCaps>>) {
        let mut rng = Rng::new(seed);
        let topo = topology::grid(5, 4, 14.0, 2.0, Band::Band5, &mut rng);
        to_view(&topo, &ViewOptions::default(), &mut rng)
    }

    #[test]
    fn evaluate_produces_samples_for_every_client() {
        let (view, caps) = setup(1);
        let n_clients: usize = caps.iter().map(|c| c.len()).sum();
        let plan = Plan::current(&view);
        let m = evaluate(
            &view,
            &plan,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(2),
        );
        assert_eq!(m.rssi_dbm.len(), n_clients);
        assert_eq!(m.tcp_latency_ms.len(), n_clients);
        assert_eq!(m.bitrate_efficiency.len(), n_clients);
        assert_eq!(m.ap_goodput_mbps.len(), view.len());
        assert!(m
            .bitrate_efficiency
            .iter()
            .all(|&e| (0.0..=1.0).contains(&e)));
        assert!(m.tcp_latency_ms.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn better_plan_means_lower_latency_and_higher_efficiency() {
        let (view, caps) = setup(3);
        let current = Plan::current(&view);
        let turbo = TurboCa::new(7).run(&view, ScheduleTier::Slow).plan;
        let m0 = evaluate(
            &view,
            &current,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(5),
        );
        let m1 = evaluate(
            &view,
            &turbo,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(5),
        );
        let lat0 = median(&m0.tcp_latency_ms).unwrap();
        let lat1 = median(&m1.tcp_latency_ms).unwrap();
        assert!(lat1 < lat0, "median latency {lat1} !< {lat0}");
        let eff0 = median(&m0.bitrate_efficiency).unwrap();
        let eff1 = median(&m1.bitrate_efficiency).unwrap();
        assert!(eff1 >= eff0, "efficiency {eff1} !>= {eff0}");
    }

    #[test]
    fn rssi_is_plan_independent() {
        let (view, caps) = setup(4);
        let current = Plan::current(&view);
        let turbo = TurboCa::new(9).run(&view, ScheduleTier::Medium).plan;
        let m0 = evaluate(
            &view,
            &current,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(6),
        );
        let m1 = evaluate(
            &view,
            &turbo,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(6),
        );
        // Same seed -> identical RSSI draws regardless of plan.
        assert_eq!(m0.rssi_dbm, m1.rssi_dbm);
    }

    #[test]
    fn heavy_tail_present_and_plan_independent() {
        let (view, caps) = setup(5);
        let plan = Plan::current(&view);
        let m = evaluate(
            &view,
            &plan,
            &caps,
            &EvalOptions::default(),
            &mut Rng::new(7),
        );
        let tail = m.tcp_latency_ms.iter().filter(|&&l| l > 400.0).count() as f64
            / m.tcp_latency_ms.len() as f64;
        assert!((0.01..0.10).contains(&tail), "{tail}");
    }

    #[test]
    fn daily_usage_integrates_and_caps() {
        let goodput = vec![100.0; 10]; // 1 Gbps aggregate
        let unlimited = daily_usage_tb(&goodput, &OFFICE_DEMAND, None);
        let capped = daily_usage_tb(&goodput, &OFFICE_DEMAND, Some(0.2));
        assert!(unlimited > capped);
        // Sanity: 1 Gbps × sum(frac)=6.71 h equivalent ≈ 3 TB.
        let expect = 1e9 * OFFICE_DEMAND.iter().sum::<f64>() * 3600.0 / 8.0 / 1e12;
        assert!((unlimited - expect).abs() < 0.01, "{unlimited} vs {expect}");
    }
}

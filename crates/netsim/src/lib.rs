//! # netsim — full-stack network simulation
//!
//! Glue layer that assembles the substrate crates into the paper's
//! experimental environments (see DESIGN.md §1 for the substitution
//! statement):
//!
//! * [`testbed`] — the §5.6 performance testbed: APs + N clients in one
//!   collision domain, bulk TCP downlink, FastACK toggleable per AP;
//! * [`population`] — client capability mixes (Fig. 1) and channel-width
//!   configuration (Table 1);
//! * [`topology`] — AP placement + interference graphs (Fig. 3);
//! * [`deployment`] — fleet-scale utilization synthesis (Fig. 2) and
//!   planner-view builders for UNet / MNet (§4.6);
//! * [`diurnal`] — the office day-shape load model behind Fig. 6.

pub mod association;
pub mod deployment;
pub mod disruption;
pub mod diurnal;
pub mod neteval;
pub mod population;
pub mod scanner;
pub mod testbed;
pub mod topology;

pub use testbed::{Testbed, TestbedConfig, TestbedReport};

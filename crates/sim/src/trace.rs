//! Lightweight structured tracing for simulation runs.
//!
//! Inspired by smoltcp's trace-everything philosophy and libpcap dumps:
//! components emit `TraceEvent`s through a `Tracer`; sinks decide what to
//! keep. The default sink is `Counting` (free), tests use `Memory` to
//! assert on emitted sequences, and debugging uses `Stderr`.
//!
//! Emission is *lazy*: [`Tracer::event_with`] takes a closure, and the
//! message `String` is only ever built when the tracer is enabled **and**
//! the sink actually keeps messages ([`TraceSink::wants_message`]). A
//! disabled tracer or a `Counting` sink therefore costs one branch on the
//! hot path — no formatting, no allocation.
//!
//! For typed, causally-linked cross-layer tracing (the flight recorder),
//! see `telemetry::flight`, which supersedes this module for the
//! protocol planes; `sim::trace` remains the free-form string channel.

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Severity/kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// Normal protocol progress (frame sent, ACK received, …).
    Event,
    /// Something exceptional but recoverable (retry limit, malformed input).
    Warn,
    /// Periodic counter snapshots.
    Stat,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: TraceKind,
    /// Dotted component path, e.g. `"mac.ap1.ampdu"`.
    pub component: &'static str,
    pub message: String,
}

/// Where trace records go.
pub trait TraceSink {
    fn record(&mut self, ev: TraceEvent);

    /// Whether this sink keeps the message text. Sinks that only count
    /// (or drop) records return `false`, and the tracer then skips
    /// building the message entirely — `record` sees an empty string.
    fn wants_message(&self) -> bool {
        true
    }
}

/// Discards messages but counts per (kind, component) — zero-allocation
/// visibility into what a run did.
#[derive(Default)]
pub struct Counting {
    pub counts: BTreeMap<(TraceKind, &'static str), u64>,
}

impl TraceSink for Counting {
    fn record(&mut self, ev: TraceEvent) {
        *self.counts.entry((ev.kind, ev.component)).or_insert(0) += 1;
    }

    fn wants_message(&self) -> bool {
        false
    }
}

/// Keeps records in memory up to a capacity (tests, small runs).
///
/// Unbounded growth made this sink unusable for long runs: a fleet-scale
/// simulation emits millions of records. `Memory` now stops storing at
/// `capacity` and counts what it had to drop instead; export the
/// [`Memory::dropped`] counter as the `trace.dropped` metric so a
/// truncated trace is visible in the run's registry snapshot.
pub struct Memory {
    pub events: Vec<TraceEvent>,
    /// Maximum records kept; further records only bump `dropped`.
    pub capacity: usize,
    /// Records discarded after `events` filled up.
    pub dropped: u64,
}

impl Default for Memory {
    /// Effectively unbounded (tests that assert on full sequences).
    fn default() -> Self {
        Memory::bounded(usize::MAX)
    }
}

impl Memory {
    /// A sink that keeps at most `capacity` records.
    pub fn bounded(capacity: usize) -> Memory {
        Memory {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }
}

impl TraceSink for Memory {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Prints to stderr as records arrive.
#[derive(Default)]
pub struct Stderr;

impl TraceSink for Stderr {
    fn record(&mut self, ev: TraceEvent) {
        eprintln!("[{} {:?} {}] {}", ev.at, ev.kind, ev.component, ev.message);
    }
}

/// Cloneable handle shared by all components in one simulation world.
/// Single-threaded by design (the simulator is single-threaded), hence
/// `Rc<RefCell<…>>` rather than locks.
#[derive(Clone)]
pub struct Tracer {
    sink: Rc<RefCell<dyn TraceSink>>,
    enabled: bool,
}

impl Tracer {
    /// Tracer feeding the given sink.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(sink)),
            enabled: true,
        }
    }

    /// A tracer that drops everything as cheaply as possible.
    pub fn disabled() -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(Counting::default())),
            enabled: false,
        }
    }

    /// Whether records are being kept at all. Components should gate
    /// expensive side computations on this; message formatting itself is
    /// already lazy via [`Tracer::emit_with`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emit a record, building the message lazily. The closure runs only
    /// when the tracer is enabled and the sink wants message text; a
    /// `Counting` sink still counts the record but never formats.
    pub fn emit_with(
        &self,
        at: SimTime,
        kind: TraceKind,
        component: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        let mut sink = self.sink.borrow_mut();
        let message = if sink.wants_message() {
            message()
        } else {
            String::new()
        };
        sink.record(TraceEvent {
            at,
            kind,
            component,
            message,
        });
    }

    /// Convenience: normal event with a lazy message.
    pub fn event_with(
        &self,
        at: SimTime,
        component: &'static str,
        message: impl FnOnce() -> String,
    ) {
        self.emit_with(at, TraceKind::Event, component, message);
    }

    /// Convenience: warning with a lazy message.
    pub fn warn_with(
        &self,
        at: SimTime,
        component: &'static str,
        message: impl FnOnce() -> String,
    ) {
        self.emit_with(at, TraceKind::Warn, component, message);
    }

    /// Convenience: normal event from an already-available string. The
    /// `to_owned` copy is still lazy — skipped for counting sinks.
    pub fn event(&self, at: SimTime, component: &'static str, message: impl AsRef<str>) {
        self.emit_with(at, TraceKind::Event, component, || {
            message.as_ref().to_owned()
        });
    }

    /// Convenience: warning from an already-available string.
    pub fn warn(&self, at: SimTime, component: &'static str, message: impl AsRef<str>) {
        self.emit_with(at, TraceKind::Warn, component, || {
            message.as_ref().to_owned()
        });
    }
}

/// A tracer bundled with direct access to its memory sink, for tests.
pub struct MemoryTracer {
    mem: Rc<RefCell<Memory>>,
    tracer: Tracer,
}

impl Default for MemoryTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryTracer {
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A memory tracer whose sink keeps at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        let mem = Rc::new(RefCell::new(Memory::bounded(capacity)));
        struct Shared(Rc<RefCell<Memory>>);
        impl TraceSink for Shared {
            fn record(&mut self, ev: TraceEvent) {
                self.0.borrow_mut().record(ev);
            }
        }
        let tracer = Tracer::new(Shared(mem.clone()));
        MemoryTracer { mem, tracer }
    }

    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Snapshot of all records so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.mem.borrow().events.clone()
    }

    /// Records dropped after the sink reached its capacity.
    pub fn dropped(&self) -> u64 {
        self.mem.borrow().dropped
    }

    /// Render records as one string, one per line (assertion helper).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in self.mem.borrow().events.iter() {
            let _ = writeln!(out, "{} {} {}", ev.at, ev.component, ev.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;

    /// A value whose `Display` panics: formatting it at all is the bug.
    struct NeverFormat;

    impl fmt::Display for NeverFormat {
        fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
            panic!("trace message formatted on a path that must not format");
        }
    }

    #[test]
    fn memory_tracer_records_in_order() {
        let mt = MemoryTracer::new();
        let t = mt.tracer();
        t.event(SimTime::from_micros(1), "a", "first");
        t.warn(SimTime::from_micros(2), "b", "second");
        let evs = mt.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].message, "first");
        assert_eq!(evs[1].kind, TraceKind::Warn);
    }

    #[test]
    fn disabled_tracer_never_formats() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        // Would panic if the closure ran.
        t.event_with(SimTime::ZERO, "x", || format!("{NeverFormat}"));
        t.warn_with(SimTime::ZERO, "x", || format!("{NeverFormat}"));
    }

    #[test]
    fn counting_sink_counts_without_formatting() {
        let counts = Rc::new(RefCell::new(Counting::default()));
        struct Shared(Rc<RefCell<Counting>>);
        impl TraceSink for Shared {
            fn record(&mut self, ev: TraceEvent) {
                self.0.borrow_mut().record(ev);
            }
            fn wants_message(&self) -> bool {
                false
            }
        }
        let t = Tracer::new(Shared(counts.clone()));
        for _ in 0..5 {
            // The hot-path contract: a counting sink must never build the
            // message. `NeverFormat` panics if it does.
            t.event_with(SimTime::ZERO, "mac", || format!("{NeverFormat}"));
        }
        assert_eq!(counts.borrow().counts[&(TraceKind::Event, "mac")], 5);
    }

    #[test]
    fn memory_sink_caps_and_counts_drops() {
        let mt = MemoryTracer::with_capacity(3);
        let t = mt.tracer();
        for i in 0..10 {
            t.event(SimTime::from_micros(i), "c", "x");
        }
        assert_eq!(mt.events().len(), 3);
        assert_eq!(mt.dropped(), 7);
        // The kept records are the earliest three.
        assert_eq!(mt.events()[2].at, SimTime::from_micros(2));
    }

    #[test]
    fn cloned_tracers_share_a_sink() {
        let mt = MemoryTracer::new();
        let t1 = mt.tracer();
        let t2 = t1.clone();
        t1.event(SimTime::ZERO, "a", "one");
        t2.event(SimTime::ZERO, "b", "two");
        assert_eq!(mt.events().len(), 2);
    }

    #[test]
    fn render_is_line_per_event() {
        let mt = MemoryTracer::new();
        mt.tracer().event(SimTime::from_millis(1), "phy", "tx");
        mt.tracer().event(SimTime::from_millis(2), "phy", "rx");
        let rendered = mt.render();
        let lines: Vec<_> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("tx"));
    }
}

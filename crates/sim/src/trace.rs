//! Lightweight structured tracing for simulation runs.
//!
//! Inspired by smoltcp's trace-everything philosophy and libpcap dumps:
//! components emit `TraceEvent`s through a `Tracer`; sinks decide what to
//! keep. The default sink is `Counting` (free), tests use `Memory` to
//! assert on emitted sequences, and debugging uses `Stderr`.

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Severity/kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// Normal protocol progress (frame sent, ACK received, …).
    Event,
    /// Something exceptional but recoverable (retry limit, malformed input).
    Warn,
    /// Periodic counter snapshots.
    Stat,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: TraceKind,
    /// Dotted component path, e.g. `"mac.ap1.ampdu"`.
    pub component: &'static str,
    pub message: String,
}

/// Where trace records go.
pub trait TraceSink {
    fn record(&mut self, ev: TraceEvent);
}

/// Discards messages but counts per (kind, component) — zero-allocation
/// visibility into what a run did.
#[derive(Default)]
pub struct Counting {
    pub counts: BTreeMap<(TraceKind, &'static str), u64>,
}

impl TraceSink for Counting {
    fn record(&mut self, ev: TraceEvent) {
        *self.counts.entry((ev.kind, ev.component)).or_insert(0) += 1;
    }
}

/// Keeps every record in memory (tests, small runs).
#[derive(Default)]
pub struct Memory {
    pub events: Vec<TraceEvent>,
}

impl TraceSink for Memory {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Prints to stderr as records arrive.
#[derive(Default)]
pub struct Stderr;

impl TraceSink for Stderr {
    fn record(&mut self, ev: TraceEvent) {
        eprintln!("[{} {:?} {}] {}", ev.at, ev.kind, ev.component, ev.message);
    }
}

/// Cloneable handle shared by all components in one simulation world.
/// Single-threaded by design (the simulator is single-threaded), hence
/// `Rc<RefCell<…>>` rather than locks.
#[derive(Clone)]
pub struct Tracer {
    sink: Rc<RefCell<dyn TraceSink>>,
    enabled: bool,
}

impl Tracer {
    /// Tracer feeding the given sink.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(sink)),
            enabled: true,
        }
    }

    /// A tracer that drops everything as cheaply as possible.
    pub fn disabled() -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(Counting::default())),
            enabled: false,
        }
    }

    /// Whether records are being kept at all. Components should gate
    /// expensive message formatting on this.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emit a record.
    pub fn emit(&self, at: SimTime, kind: TraceKind, component: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        self.sink.borrow_mut().record(TraceEvent {
            at,
            kind,
            component,
            message,
        });
    }

    /// Convenience: normal event.
    pub fn event(&self, at: SimTime, component: &'static str, message: impl AsRef<str>) {
        self.emit(at, TraceKind::Event, component, message.as_ref().to_owned());
    }

    /// Convenience: warning.
    pub fn warn(&self, at: SimTime, component: &'static str, message: impl AsRef<str>) {
        self.emit(at, TraceKind::Warn, component, message.as_ref().to_owned());
    }
}

/// A tracer bundled with direct access to its memory sink, for tests.
pub struct MemoryTracer {
    mem: Rc<RefCell<Memory>>,
    tracer: Tracer,
}

impl Default for MemoryTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryTracer {
    pub fn new() -> Self {
        let mem = Rc::new(RefCell::new(Memory::default()));
        struct Shared(Rc<RefCell<Memory>>);
        impl TraceSink for Shared {
            fn record(&mut self, ev: TraceEvent) {
                self.0.borrow_mut().events.push(ev);
            }
        }
        let tracer = Tracer::new(Shared(mem.clone()));
        MemoryTracer { mem, tracer }
    }

    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Snapshot of all records so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.mem.borrow().events.clone()
    }

    /// Render records as one string, one per line (assertion helper).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in self.mem.borrow().events.iter() {
            let _ = writeln!(out, "{} {} {}", ev.at, ev.component, ev.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_tracer_records_in_order() {
        let mt = MemoryTracer::new();
        let t = mt.tracer();
        t.event(SimTime::from_micros(1), "a", "first");
        t.warn(SimTime::from_micros(2), "b", "second");
        let evs = mt.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].message, "first");
        assert_eq!(evs[1].kind, TraceKind::Warn);
    }

    #[test]
    fn disabled_tracer_drops_everything() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.event(SimTime::ZERO, "x", "dropped");
        // No panic, nothing recorded: behaviour verified via is_enabled.
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = Counting::default();
        for i in 0..5 {
            c.record(TraceEvent {
                at: SimTime::from_micros(i),
                kind: TraceKind::Event,
                component: "mac",
                message: String::new(),
            });
        }
        assert_eq!(c.counts[&(TraceKind::Event, "mac")], 5);
    }

    #[test]
    fn cloned_tracers_share_a_sink() {
        let mt = MemoryTracer::new();
        let t1 = mt.tracer();
        let t2 = t1.clone();
        t1.event(SimTime::ZERO, "a", "one");
        t2.event(SimTime::ZERO, "b", "two");
        assert_eq!(mt.events().len(), 2);
    }

    #[test]
    fn render_is_line_per_event() {
        let mt = MemoryTracer::new();
        mt.tracer().event(SimTime::from_millis(1), "phy", "tx");
        mt.tracer().event(SimTime::from_millis(2), "phy", "rx");
        let rendered = mt.render();
        let lines: Vec<_> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("tx"));
    }
}

//! # sim — deterministic discrete-event simulation kernel
//!
//! The foundation every other crate in this workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time;
//! * [`EventQueue`] — a monotone, FIFO-stable-on-ties event queue, generic
//!   over the domain's event type;
//! * [`Rng`] — a self-contained xoshiro256\*\* generator with the
//!   distributions the workloads need (uniform, exponential, normal,
//!   Poisson, Zipf, weighted choice);
//! * [`Tracer`] — structured trace records with pluggable sinks.
//!
//! Design rules (see DESIGN.md §4): no wall-clock access, no global
//! state, single-threaded, and one seed reproduces one run bit-for-bit.
//!
//! ```
//! use sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_micros(10), Ev::Ping);
//! q.schedule_in(SimDuration::from_micros(5), Ev::Pong);
//! assert_eq!(q.pop().unwrap().1, Ev::Pong); // 5us < 10us
//! assert_eq!(q.now(), SimTime::from_micros(5));
//! ```

pub mod queue;
pub mod rng;
pub mod sanitize;
pub mod time;
pub mod trace;

pub use queue::{EventId, EventQueue, QueueStats};
pub use rng::{derive_stream_seed, Rng};
pub use time::{SimDuration, SimTime};
pub use trace::{Counting, Memory, MemoryTracer, Stderr, TraceEvent, TraceKind, TraceSink, Tracer};

//! Simulated time.
//!
//! All simulation time is kept as an integer number of **nanoseconds**
//! since the start of the run. Nanosecond resolution is required because
//! 802.11 timing constants (SIFS = 16 µs, slot = 9 µs, OFDM symbol =
//! 3.6 µs with a short guard interval) do not divide evenly into
//! microseconds once symbol counts are involved. A `u64` of nanoseconds
//! covers ~584 simulated years, far beyond the day-long experiments here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Time expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time expressed in seconds as a float (for statistics/reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from a float number of seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Truncated microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Truncated milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used for backoff jitter); clamps at zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// Ratio of two durations (dimensionless), e.g. for utilization.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_future() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn float_roundtrip_is_close() {
        let d = SimDuration::from_secs_f64(0.001234567);
        assert_eq!(d.as_nanos(), 1_234_567);
        assert!((d.as_secs_f64() - 0.001234567).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_ratio() {
        let busy = SimDuration::from_millis(200);
        let total = SimDuration::from_secs(1);
        assert!((busy / total - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(16)), "16.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn a_full_day_fits() {
        let day = SimDuration::from_hours(24);
        let end = SimTime::ZERO + day;
        assert_eq!(end.as_nanos(), 86_400_000_000_000);
    }
}

//! Runtime sim-sanitizer — cheap invariant hooks for debug/test builds.
//!
//! The static linter (`crates/simcheck`) catches nondeterminism a lexer
//! can see: hash collections, wall clocks, float equality. This module
//! is its runtime complement: invariants that need live values — clock
//! monotonicity, BlockAck window bounds, TCP counter ordering, fleet
//! shard-checksum stability — asserted at the hook sites themselves.
//!
//! Gating: checks run when [`enabled`] is true, i.e. in any build with
//! `debug_assertions` (so plain `cargo test` is sanitized) or with the
//! `sanitize` feature (so release tests can opt in). Release benches
//! compile the checks away entirely. Domain crates (`mac80211`,
//! `tcpsim`, `fleet`) forward their own `sanitize` features to
//! `sim/sanitize`, so `--features sanitize` anywhere in the tree turns
//! the whole stack on.
//!
//! A violation panics with a `sim-sanitizer:` prefix so a failing CI
//! run is immediately distinguishable from an ordinary test assertion.
//! Before panicking, [`violation`] fires the thread's registered
//! *violation hook* (if any) exactly once — the flight recorder
//! (`telemetry::flight`) installs one to dump the last-N trace records
//! to disk, turning every invariant panic into a post-mortem artifact.

use crate::time::SimTime;
use std::cell::RefCell;

thread_local! {
    /// One hook per thread (the simulator is single-threaded, so this is
    /// effectively one hook per simulation world). Taken — not borrowed —
    /// at violation time so a hook that itself trips a check cannot
    /// recurse.
    static VIOLATION_HOOK: RefCell<Option<Box<dyn FnMut()>>> = const { RefCell::new(None) };
}

/// Install a hook that runs once, on this thread, immediately before the
/// next sanitizer violation panics. Replaces any previous hook.
///
/// The hook is consumed when it fires; re-install after catching the
/// panic if another armed dump is wanted.
pub fn set_violation_hook(hook: Box<dyn FnMut()>) {
    VIOLATION_HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Remove the thread's violation hook, if any.
pub fn clear_violation_hook() {
    VIOLATION_HOOK.with(|h| *h.borrow_mut() = None);
}

/// True when sanitizer checks are compiled in and active.
///
/// Const so that `if enabled() { … }` folds to nothing in release
/// builds without the `sanitize` feature.
pub const fn enabled() -> bool {
    cfg!(any(feature = "sanitize", debug_assertions))
}

/// Report an invariant violation. Panics unconditionally — callers
/// gate on [`enabled`] (or use [`check`], which does it for them).
/// Runs the thread's violation hook (see [`set_violation_hook`]) first,
/// so a flight recorder can dump its rings before the unwind starts.
#[track_caller]
#[cold]
pub fn violation(msg: &str) -> ! {
    if let Some(mut hook) = VIOLATION_HOOK.with(|h| h.borrow_mut().take()) {
        hook();
    }
    panic!("sim-sanitizer: {msg}");
}

/// Assert `cond` when the sanitizer is active.
#[track_caller]
pub fn check(cond: bool, msg: &str) {
    if enabled() && !cond {
        violation(msg);
    }
}

/// Simulated time must never run backwards: `next` is the clock value
/// about to be adopted, `prev` the current one.
#[track_caller]
pub fn check_time_monotonic(prev: SimTime, next: SimTime) {
    if enabled() && next < prev {
        violation(&format!("clock moved backwards: {prev} -> {next}"));
    }
}

/// Event pop order must be non-decreasing in timestamp. This re-checks
/// the heap's ordering contract from the outside, so a future bug in
/// the `Entry` ordering (or a stale-cancellation bookkeeping error)
/// trips here instead of silently reordering a run.
#[track_caller]
pub fn check_event_order(last_popped_at: SimTime, at: SimTime) {
    if enabled() && at < last_popped_at {
        violation(&format!(
            "event queue popped out of order: {at} after {last_popped_at}"
        ));
    }
}

#[cfg(test)]
mod tests {
    // Plain `cargo test` compiles with debug_assertions, and the CI
    // sanitized pass sets the feature explicitly; either way the
    // checks below are live. Guard anyway so a hypothetical release
    // test run without the feature doesn't report false failures.
    #[cfg(any(feature = "sanitize", debug_assertions))]
    mod active {
        use super::super::*;

        #[test]
        fn enabled_in_this_build() {
            assert!(enabled());
        }

        #[test]
        fn check_passes_on_true() {
            check(true, "never fires");
            check_time_monotonic(SimTime::from_micros(5), SimTime::from_micros(5));
            check_time_monotonic(SimTime::from_micros(5), SimTime::from_micros(9));
            check_event_order(SimTime::ZERO, SimTime::ZERO);
        }

        #[test]
        #[should_panic(expected = "sim-sanitizer: boom")]
        fn check_panics_on_false() {
            check(false, "boom");
        }

        #[test]
        #[should_panic(expected = "sim-sanitizer: clock moved backwards")]
        fn backwards_clock_is_violation() {
            check_time_monotonic(SimTime::from_micros(10), SimTime::from_micros(9));
        }

        #[test]
        #[should_panic(expected = "sim-sanitizer: event queue popped out of order")]
        fn out_of_order_pop_is_violation() {
            check_event_order(SimTime::from_micros(10), SimTime::from_micros(9));
        }

        #[test]
        fn violation_hook_fires_once_before_the_panic() {
            use std::cell::Cell;
            use std::rc::Rc;

            let fired = Rc::new(Cell::new(0u32));
            let fired2 = fired.clone();
            set_violation_hook(Box::new(move || fired2.set(fired2.get() + 1)));

            let caught = std::panic::catch_unwind(|| check(false, "hooked"));
            assert!(caught.is_err());
            assert_eq!(fired.get(), 1, "hook must run before the panic");

            // The hook is consumed: a second violation panics without it.
            let caught = std::panic::catch_unwind(|| check(false, "unhooked"));
            assert!(caught.is_err());
            assert_eq!(fired.get(), 1);
            clear_violation_hook();
        }
    }
}

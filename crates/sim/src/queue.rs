//! The event queue at the heart of the discrete-event kernel.
//!
//! The queue is generic over the event payload type: each domain crate
//! (MAC simulation, network simulation, …) defines its own event enum and
//! drives an `EventQueue<E>`. Two properties the rest of the system relies
//! on:
//!
//! 1. **Monotonicity** — events pop in non-decreasing timestamp order, and
//!    scheduling strictly in the past is rejected (`schedule` panics in
//!    debug builds, clamps to `now` in release).
//! 2. **Stable tie-break** — events with equal timestamps pop in the order
//!    they were scheduled. Without this, runs would be sensitive to heap
//!    internals and replay determinism would be lost.
//!
//! ## Arena payload store
//!
//! Payloads live in a slab (`Vec<Option<(seq, E)>>`) with a free-list, not
//! inside the heap entries. Heap entries are three plain words
//! `(at, seq, slot)`, so every sift during push/pop moves 24 bytes instead
//! of a whole event enum, and a popped or cancelled payload's slot is
//! reused by the next `schedule` — steady-state simulation allocates
//! nothing per event. Stale heap entries left behind by lazy cancellation
//! never touch the payload: liveness is decided by the seq tag stored in
//! the slab slot, so an entry (or an [`EventId`]) pointing at a reused
//! slot sees a different tag and is discarded. No auxiliary map — every
//! queue operation is the heap op plus O(1) slab bookkeeping.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event; used to cancel timers
/// (e.g. a TCP retransmission timer that is re-armed on every ACK).
/// Carries the event's unique sequence number (the identity, and the
/// ordering) plus its arena slot, so cancellation is a direct slab
/// probe — the slot alone would be ambiguous after reuse, the seq tag
/// disambiguates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    seq: u64,
    slot: usize,
}

/// Lifetime counters for one queue — cheap plain integers the driver
/// can export into a `telemetry::metrics` registry (`sim` sits below
/// `telemetry` in the dependency graph, so the queue cannot hold a
/// registry handle itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Live events popped (excludes cancelled ones skipped over).
    pub popped: u64,
    /// Successful cancellations.
    pub cancelled: u64,
    /// High-watermark of simultaneously pending live events — how deep
    /// the queue ever got. Together with `arena_capacity` this is the
    /// capacity-sizing number for the ROADMAP's bounded-memory claims.
    pub depth_peak: u64,
}

/// One heap entry: ordering key plus the slab slot holding the payload.
/// Deliberately payload-free and `Copy` — heap sifts move 24 bytes.
#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: usize,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking timestamp ties by ascending sequence number.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

/// A time-ordered queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    // Arena of pending payloads. `Some((seq, payload))` while the event
    // is live; the seq tag lets the sanitizer prove a heap entry and its
    // slot still describe the same event.
    slab: Vec<Option<(u64, E)>>,
    // Vacant slab indices, reused LIFO by the next schedule.
    free: Vec<usize>,
    now: SimTime,
    next_seq: u64,
    // Cancelled events stay in the heap (lazy deletion) and are skipped
    // on pop; cancellation itself is an O(1) slab probe through the
    // handle's (slot, seq) pair. This counter keeps `len`/`is_empty`
    // honest without a side map.
    live_count: usize,
    stats: QueueStats,
    // Timestamp of the most recently popped event, used by the
    // sim-sanitizer to re-verify pop order from outside the heap.
    last_popped_at: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            live_count: 0,
            stats: QueueStats::default(),
            last_popped_at: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Lifetime scheduled/popped/cancelled counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Slab slots ever allocated for payload storage. Once the queue
    /// reaches its steady-state high-water mark this stops growing —
    /// popped and cancelled slots are recycled through the free-list.
    pub fn arena_capacity(&self) -> usize {
        self.slab.len()
    }

    /// Vacant slab slots awaiting reuse.
    pub fn arena_free(&self) -> usize {
        self.free.len()
    }

    /// Schedule `payload` at absolute time `at`. Returns a handle usable
    /// with [`EventQueue::cancel`].
    ///
    /// Scheduling before `now` is a logic error: debug builds panic;
    /// release builds clamp to `now` so a slightly-stale timer fires
    /// immediately rather than corrupting the clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                crate::sanitize::check(
                    self.slab[slot].is_none(),
                    "event arena free-list handed out an occupied slot",
                );
                self.slab[slot] = Some((seq, payload));
                slot
            }
            None => {
                self.slab.push(Some((seq, payload)));
                self.slab.len() - 1
            }
        };
        self.heap.push(Entry { at, seq, slot });
        self.live_count += 1;
        self.stats.scheduled += 1;
        self.stats.depth_peak = self.stats.depth_peak.max(self.live_count as u64);
        EventId { seq, slot }
    }

    /// Schedule `payload` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending. O(1): the handle names its arena slot, and the
    /// slot's seq tag says whether it still holds this event (a popped or
    /// cancelled event's slot either went vacant or was reused under a
    /// different seq). The heap entry stays behind (lazy deletion) and is
    /// discarded when it reaches the top. A TCP RTO re-arm (one cancel
    /// per ACK) used to pay a full-heap existence scan here, quadratic in
    /// flight size.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let live = id.slot < self.slab.len()
            && self.slab[id.slot]
                .as_ref()
                .is_some_and(|&(seq, _)| seq == id.seq);
        if live {
            self.slab[id.slot] = None;
            self.free.push(id.slot);
            self.live_count -= 1;
            self.stats.cancelled += 1;
        }
        live
    }

    /// Pop the earliest live event, advancing `now` to its timestamp.
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            // Liveness: the slot must still carry this entry's seq tag.
            // A cancelled event left the slot vacant (or reused under a
            // newer seq), so a stale entry can never surface a payload
            // that is not its own.
            if self.slab[entry.slot]
                .as_ref()
                .is_none_or(|&(seq, _)| seq != entry.seq)
            {
                continue; // cancelled; skip the stale entry
            }
            let (_, payload) = self.slab[entry.slot]
                .take()
                // Guarded by the tag check just above.
                // simcheck: allow(unwrap-in-lib)
                .expect("live event missing from arena");
            self.free.push(entry.slot);
            self.live_count -= 1;
            crate::sanitize::check_event_order(self.last_popped_at, entry.at);
            self.last_popped_at = entry.at;
            // If the clock was advanced past this event (a driver that
            // models busy periods with `advance_to`), the event fires
            // late, at the current clock — time never runs backwards.
            let next_now = self.now.max(entry.at);
            crate::sanitize::check_time_monotonic(self.now, next_now);
            self.now = next_now;
            self.stats.popped += 1;
            return Some((self.now, payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Takes `&mut self` so cancelled entries sitting on top of the heap
    /// can be discarded as they are found — amortized O(log n) against
    /// the old full-heap filter, which re-scanned every entry times
    /// every outstanding cancellation on each run-loop bounds check.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            if self.slab[top.slot]
                .as_ref()
                .is_some_and(|&(seq, _)| seq == top.seq)
            {
                return Some(top.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Advance the clock with no event — used by drivers that model
    /// occupancy (e.g. a radio busy period) outside the queue. Pending
    /// events whose timestamps fall inside the skipped span fire *late*,
    /// at the advanced clock, when next popped.
    pub fn advance_to(&mut self, to: SimTime) {
        crate::sanitize::check_time_monotonic(self.now, to);
        self.now = self.now.max(to);
    }

    /// Sanitizer audit of the arena bookkeeping as a whole: occupied +
    /// free slots cover the slab with no overlap, occupancy equals the
    /// live count, no free slot still holds a payload, and every
    /// occupied slot has exactly one live heap entry naming it (its seq
    /// tag). O(n log n) — called from tests and the property suite, not
    /// from the hot path. No-op unless the sim-sanitizer is active.
    pub fn audit_arena(&self) {
        if !crate::sanitize::enabled() {
            return;
        }
        let occupied = self.slab.iter().filter(|s| s.is_some()).count();
        crate::sanitize::check(
            occupied == self.live_count,
            "arena occupancy disagrees with the live-event count",
        );
        crate::sanitize::check(
            occupied + self.free.len() == self.slab.len(),
            "arena slots leaked: occupied + free != allocated",
        );
        for slot in &self.free {
            crate::sanitize::check(
                self.slab[*slot].is_none(),
                "free-list references an occupied arena slot",
            );
        }
        // Each occupied slot's tag must be backed by exactly one heap
        // entry carrying that (seq, slot) pair — a live event with no
        // entry would never fire; a duplicate would fire twice.
        let mut tags: Vec<(u64, usize)> = self
            .heap
            .iter()
            .filter(|e| {
                self.slab[e.slot]
                    .as_ref()
                    .is_some_and(|&(seq, _)| seq == e.seq)
            })
            .map(|e| (e.seq, e.slot))
            .collect();
        tags.sort_unstable();
        tags.dedup();
        crate::sanitize::check(
            tags.len() == occupied,
            "live events and backing heap entries disagree",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_micros(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        // A handle naming a slot the arena never allocated.
        assert!(!q.cancel(EventId {
            seq: 12345,
            slot: 12345
        }));
        // A handle naming a real slot but a seq that no longer owns it.
        let a = q.schedule(SimTime::from_micros(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(EventId {
            seq: a.seq + 999,
            slot: a.slot
        }));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn len_is_exact_under_mixed_ops() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[3]);
        q.cancel(ids[7]);
        assert_eq!(q.len(), 8);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_scheduled_popped_cancelled() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[1]);
        q.cancel(ids[1]); // no-op, must not double count
        q.pop();
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 5);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 2);
    }

    #[test]
    fn depth_peak_tracks_max_concurrent_pending() {
        let mut q = EventQueue::new();
        for i in 0..7 {
            q.schedule(SimTime::from_micros(i), i);
        }
        // Drain to zero, then refill shallower: the peak must not move.
        while q.pop().is_some() {}
        for i in 0..3u64 {
            q.schedule(q.now() + SimDuration::from_micros(i + 1), i);
        }
        assert_eq!(q.stats().depth_peak, 7);
        // A deeper refill raises it.
        for i in 3..9u64 {
            q.schedule(q.now() + SimDuration::from_micros(i + 1), i);
        }
        assert_eq!(q.stats().depth_peak, 9);
    }

    #[test]
    fn peek_discards_cancelled_tops_eagerly() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..50)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        for id in &ids[..49] {
            q.cancel(*id);
        }
        // 49 cancelled entries sit on top; peek must skip them all and
        // still report the single live event.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(49)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, 49);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_interleaved_with_equal_times_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        let ids: Vec<_> = (0..10).map(|i| q.schedule(t, i)).collect();
        for i in (0..10).step_by(2) {
            assert!(q.cancel(ids[i]));
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn arena_reuses_slots_in_steady_state() {
        let mut q = EventQueue::new();
        // Prime the arena to its high-water mark.
        let ids: Vec<_> = (0..16)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        assert_eq!(q.arena_capacity(), 16);
        // Half cancelled, half popped: every slot must return to the
        // free-list either way.
        for id in &ids[..8] {
            q.cancel(*id);
        }
        while q.pop().is_some() {}
        assert_eq!(q.arena_free(), 16);
        // Steady-state churn: the arena never grows past its peak.
        for round in 0..100u64 {
            for i in 0..16 {
                q.schedule(q.now() + SimDuration::from_micros(i + 1), round);
            }
            while q.pop().is_some() {}
        }
        assert_eq!(q.arena_capacity(), 16, "arena grew under steady churn");
        q.audit_arena();
    }

    #[test]
    fn stale_heap_entry_never_reads_a_reused_slot() {
        let mut q = EventQueue::new();
        // Cancel an event, then immediately reschedule into the slot it
        // vacated (LIFO free-list guarantees reuse) with a *later* time.
        // The stale heap entry surfaces first and must be skipped, not
        // resolved through the reused slot.
        let a = q.schedule(SimTime::from_micros(1), "dead");
        q.cancel(a);
        q.schedule(SimTime::from_micros(5), "live");
        assert_eq!(q.arena_capacity(), 1, "slot was not reused");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "live")));
        assert!(q.pop().is_none());
        q.audit_arena();
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    #[should_panic(expected = "sim-sanitizer: clock moved backwards")]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn advancing_clock_backwards_is_a_violation() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn pop_order_recheck_passes_on_normal_runs() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.advance_to(SimTime::from_micros(50)); // event at t=10 fires late
        q.schedule(SimTime::from_micros(60), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(50), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(60), 2));
    }
}

#[cfg(test)]
mod model_tests {
    //! Cancel-heavy property tests: the queue must agree, operation by
    //! operation, with a naive model (a plain Vec scanned for the
    //! minimum) on `len`, cancel results, peek times and pop order —
    //! and the arena bookkeeping must stay internally consistent
    //! throughout (see `audit_arena`).

    use super::*;
    use proptest::prelude::*;

    /// Naive reference: (at, seq, payload) triples, popped by scanning
    /// for min (at, seq) — FIFO on ties by construction.
    #[derive(Default)]
    struct NaiveQueue {
        pending: Vec<(SimTime, u64, u64)>,
        now: SimTime,
        next_seq: u64,
    }

    impl NaiveQueue {
        fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push((at.max(self.now), seq, payload));
            seq
        }

        fn cancel(&mut self, seq: u64) -> bool {
            if let Some(pos) = self.pending.iter().position(|&(_, s, _)| s == seq) {
                self.pending.remove(pos);
                true
            } else {
                false
            }
        }

        fn peek_time(&self) -> Option<SimTime> {
            self.pending.iter().map(|&(at, _, _)| at).min()
        }

        fn pop(&mut self) -> Option<(SimTime, u64)> {
            let pos = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, seq, _))| (at, seq))
                .map(|(i, _)| i)?;
            let (at, _, payload) = self.pending.remove(pos);
            self.now = self.now.max(at);
            Some((self.now, payload))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cancel_heavy_ops_match_naive_model(
            ops in proptest::collection::vec(any::<u64>(), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            let mut ids: Vec<(EventId, u64)> = Vec::new();

            for op in ops {
                // Decode each word into an operation; bias toward
                // cancellation so the lazy-deletion path stays busy.
                match op % 5 {
                    0 | 1 => {
                        let dt = SimDuration::from_micros((op >> 3) % 1000);
                        let at = q.now() + dt;
                        let payload = op >> 3;
                        let id = q.schedule(at, payload);
                        let seq = model.schedule(at, payload);
                        ids.push((id, seq));
                    }
                    2 | 3 => {
                        if !ids.is_empty() {
                            let (id, seq) = ids[(op as usize >> 3) % ids.len()];
                            prop_assert_eq!(q.cancel(id), model.cancel(seq));
                        }
                    }
                    _ => {
                        prop_assert_eq!(q.pop(), model.pop());
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                prop_assert_eq!(q.peek_time(), model.peek_time());
            }

            // Drain: remaining pop order must match exactly.
            loop {
                let (a, b) = (q.pop(), model.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(q.is_empty());
        }

        /// Cancel-then-immediately-reschedule interleaved with the eager
        /// peek-discard: the regression surface for the arena rewrite.
        /// Cancelling frees a slot that the very next schedule reuses
        /// (LIFO free-list) while the cancelled event's heap entry is
        /// still pending discard; a `peek_time` may or may not have
        /// evicted that stale entry in between. Whatever the
        /// interleaving, the queue must track the naive model exactly
        /// and the live-map/slab/free-list triple must stay coherent.
        #[test]
        fn cancel_reschedule_races_peek_discard(
            ops in proptest::collection::vec(any::<u64>(), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            let mut ids: Vec<(EventId, u64)> = Vec::new();

            for op in ops {
                match op % 6 {
                    0 => {
                        let dt = SimDuration::from_micros((op >> 3) % 500);
                        let at = q.now() + dt;
                        let payload = op >> 3;
                        let id = q.schedule(at, payload);
                        let seq = model.schedule(at, payload);
                        ids.push((id, seq));
                    }
                    // Cancel-then-reschedule as one compound op: the new
                    // event lands in the just-vacated arena slot with a
                    // fresh id, while the old heap entry goes stale.
                    1 | 2 => {
                        if !ids.is_empty() {
                            let (id, seq) = ids[(op as usize >> 3) % ids.len()];
                            prop_assert_eq!(q.cancel(id), model.cancel(seq));
                            let dt = SimDuration::from_micros((op >> 7) % 500);
                            let at = q.now() + dt;
                            let payload = op >> 7;
                            let id = q.schedule(at, payload);
                            let seq = model.schedule(at, payload);
                            ids.push((id, seq));
                        }
                    }
                    // Bare peek: drives the eager discard of stale tops
                    // at arbitrary points between cancels and pops.
                    3 => {
                        prop_assert_eq!(q.peek_time(), model.peek_time());
                    }
                    _ => {
                        prop_assert_eq!(q.pop(), model.pop());
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                q.audit_arena();
            }

            loop {
                let (a, b) = (q.pop(), model.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(q.is_empty());
            q.audit_arena();
        }
    }
}

//! The event queue at the heart of the discrete-event kernel.
//!
//! The queue is generic over the event payload type: each domain crate
//! (MAC simulation, network simulation, …) defines its own event enum and
//! drives an `EventQueue<E>`. Two properties the rest of the system relies
//! on:
//!
//! 1. **Monotonicity** — events pop in non-decreasing timestamp order, and
//!    scheduling strictly in the past is rejected (`schedule` panics in
//!    debug builds, clamps to `now` in release).
//! 2. **Stable tie-break** — events with equal timestamps pop in the order
//!    they were scheduled. Without this, runs would be sensitive to heap
//!    internals and replay determinism would be lost.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Handle identifying a scheduled event; used to cancel timers
/// (e.g. a TCP retransmission timer that is re-armed on every ACK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Lifetime counters for one queue — cheap plain integers the driver
/// can export into a `telemetry::metrics` registry (`sim` sits below
/// `telemetry` in the dependency graph, so the queue cannot hold a
/// registry handle itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Live events popped (excludes cancelled ones skipped over).
    pub popped: u64,
    /// Successful cancellations.
    pub cancelled: u64,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking timestamp ties by ascending sequence number.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A time-ordered queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    // Cancelled events stay in the heap (lazy deletion) and are skipped
    // on pop; `live_ids` holds the seq of every still-pending event, so
    // cancellation is one O(log n) set probe instead of a heap scan,
    // and `len`/`is_empty` stay honest (live count = set size).
    live_ids: BTreeSet<u64>,
    stats: QueueStats,
    // Timestamp of the most recently popped event, used by the
    // sim-sanitizer to re-verify pop order from outside the heap.
    last_popped_at: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            live_ids: BTreeSet::new(),
            stats: QueueStats::default(),
            last_popped_at: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live_ids.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live_ids.is_empty()
    }

    /// Lifetime scheduled/popped/cancelled counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedule `payload` at absolute time `at`. Returns a handle usable
    /// with [`EventQueue::cancel`].
    ///
    /// Scheduling before `now` is a logic error: debug builds panic;
    /// release builds clamp to `now` so a slightly-stale timer fires
    /// immediately rather than corrupting the clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live_ids.insert(seq);
        self.stats.scheduled += 1;
        EventId(seq)
    }

    /// Schedule `payload` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending. O(log n): one probe of the live-id set — the
    /// heap entry stays behind (lazy deletion) and is discarded when it
    /// reaches the top. A TCP RTO re-arm (one cancel per ACK) used to
    /// pay a full-heap existence scan here, quadratic in flight size.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live_ids.remove(&id.0) {
            self.stats.cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Pop the earliest live event, advancing `now` to its timestamp.
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live_ids.remove(&entry.seq) {
                continue; // cancelled; marker already gone from the set
            }
            crate::sanitize::check_event_order(self.last_popped_at, entry.at);
            self.last_popped_at = entry.at;
            // If the clock was advanced past this event (a driver that
            // models busy periods with `advance_to`), the event fires
            // late, at the current clock — time never runs backwards.
            let next_now = self.now.max(entry.at);
            crate::sanitize::check_time_monotonic(self.now, next_now);
            self.now = next_now;
            self.stats.popped += 1;
            return Some((self.now, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Takes `&mut self` so cancelled entries sitting on top of the heap
    /// can be discarded as they are found — amortized O(log n) against
    /// the old full-heap filter, which re-scanned every entry times
    /// every outstanding cancellation on each run-loop bounds check.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            if self.live_ids.contains(&top.seq) {
                return Some(top.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Advance the clock with no event — used by drivers that model
    /// occupancy (e.g. a radio busy period) outside the queue. Pending
    /// events whose timestamps fall inside the skipped span fire *late*,
    /// at the advanced clock, when next popped.
    pub fn advance_to(&mut self, to: SimTime) {
        crate::sanitize::check_time_monotonic(self.now, to);
        self.now = self.now.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_micros(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(12345)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn len_is_exact_under_mixed_ops() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[3]);
        q.cancel(ids[7]);
        assert_eq!(q.len(), 8);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_scheduled_popped_cancelled() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..5)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[1]);
        q.cancel(ids[1]); // no-op, must not double count
        q.pop();
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 5);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 2);
    }

    #[test]
    fn peek_discards_cancelled_tops_eagerly() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..50)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        for id in &ids[..49] {
            q.cancel(*id);
        }
        // 49 cancelled entries sit on top; peek must skip them all and
        // still report the single live event.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(49)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, 49);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_interleaved_with_equal_times_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        let ids: Vec<_> = (0..10).map(|i| q.schedule(t, i)).collect();
        for i in (0..10).step_by(2) {
            assert!(q.cancel(ids[i]));
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    #[should_panic(expected = "sim-sanitizer: clock moved backwards")]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn advancing_clock_backwards_is_a_violation() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn pop_order_recheck_passes_on_normal_runs() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.advance_to(SimTime::from_micros(50)); // event at t=10 fires late
        q.schedule(SimTime::from_micros(60), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(50), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(60), 2));
    }
}

#[cfg(test)]
mod model_tests {
    //! Cancel-heavy property test: the queue must agree, operation by
    //! operation, with a naive model (a plain Vec scanned for the
    //! minimum) on `len`, cancel results, peek times and pop order.

    use super::*;
    use proptest::prelude::*;

    /// Naive reference: (at, seq, payload) triples, popped by scanning
    /// for min (at, seq) — FIFO on ties by construction.
    #[derive(Default)]
    struct NaiveQueue {
        pending: Vec<(SimTime, u64, u64)>,
        now: SimTime,
        next_seq: u64,
    }

    impl NaiveQueue {
        fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push((at.max(self.now), seq, payload));
            seq
        }

        fn cancel(&mut self, seq: u64) -> bool {
            if let Some(pos) = self.pending.iter().position(|&(_, s, _)| s == seq) {
                self.pending.remove(pos);
                true
            } else {
                false
            }
        }

        fn peek_time(&self) -> Option<SimTime> {
            self.pending.iter().map(|&(at, _, _)| at).min()
        }

        fn pop(&mut self) -> Option<(SimTime, u64)> {
            let pos = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, seq, _))| (at, seq))
                .map(|(i, _)| i)?;
            let (at, _, payload) = self.pending.remove(pos);
            self.now = self.now.max(at);
            Some((self.now, payload))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cancel_heavy_ops_match_naive_model(
            ops in proptest::collection::vec(any::<u64>(), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut model = NaiveQueue::default();
            let mut ids: Vec<(EventId, u64)> = Vec::new();

            for op in ops {
                // Decode each word into an operation; bias toward
                // cancellation so the lazy-deletion path stays busy.
                match op % 5 {
                    0 | 1 => {
                        let dt = SimDuration::from_micros((op >> 3) % 1000);
                        let at = q.now() + dt;
                        let payload = op >> 3;
                        let id = q.schedule(at, payload);
                        let seq = model.schedule(at, payload);
                        ids.push((id, seq));
                    }
                    2 | 3 => {
                        if !ids.is_empty() {
                            let (id, seq) = ids[(op as usize >> 3) % ids.len()];
                            prop_assert_eq!(q.cancel(id), model.cancel(seq));
                        }
                    }
                    _ => {
                        prop_assert_eq!(q.pop(), model.pop());
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                prop_assert_eq!(q.peek_time(), model.peek_time());
            }

            // Drain: remaining pop order must match exactly.
            loop {
                let (a, b) = (q.pop(), model.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(q.is_empty());
        }
    }
}

//! The event queue at the heart of the discrete-event kernel.
//!
//! The queue is generic over the event payload type: each domain crate
//! (MAC simulation, network simulation, …) defines its own event enum and
//! drives an `EventQueue<E>`. Two properties the rest of the system relies
//! on:
//!
//! 1. **Monotonicity** — events pop in non-decreasing timestamp order, and
//!    scheduling strictly in the past is rejected (`schedule` panics in
//!    debug builds, clamps to `now` in release).
//! 2. **Stable tie-break** — events with equal timestamps pop in the order
//!    they were scheduled. Without this, runs would be sensitive to heap
//!    internals and replay determinism would be lost.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event; used to cancel timers
/// (e.g. a TCP retransmission timer that is re-armed on every ACK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    payload: Option<E>,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking timestamp ties by ascending sequence number.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A time-ordered queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    // Cancelled events stay in the heap (lazy deletion) and are skipped on
    // pop; `live` tracks how many are real so `len`/`is_empty` stay honest.
    live: usize,
    cancelled: Vec<EventId>,
    // Timestamp of the most recently popped event, used by the
    // sim-sanitizer to re-verify pop order from outside the heap.
    last_popped_at: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            live: 0,
            cancelled: Vec::new(),
            last_popped_at: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at absolute time `at`. Returns a handle usable
    /// with [`EventQueue::cancel`].
    ///
    /// Scheduling before `now` is a logic error: debug builds panic;
    /// release builds clamp to `now` so a slightly-stale timer fires
    /// immediately rather than corrupting the clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            payload: Some(payload),
        });
        self.live += 1;
        EventId(seq)
    }

    /// Schedule `payload` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending. Cancellation is O(1) amortized (lazy deletion).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot address into the heap; record the id and filter on pop.
        // A sorted Vec would be O(n) to probe; ids are few and short-lived,
        // so a linear scan over outstanding cancellations is fine.
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.contains(&id) {
            return false;
        }
        // We do not know whether the event already popped. Track it and
        // reconcile at pop time; `live` is decremented optimistically and
        // re-incremented if the id never matches (see pop()).
        // To keep `live` exact we instead verify existence first.
        let exists = self
            .heap
            .iter()
            .any(|e| e.seq == id.0 && !e.cancelled && e.payload.is_some());
        if !exists {
            return false;
        }
        self.cancelled.push(id);
        self.live -= 1;
        true
    }

    /// Pop the earliest live event, advancing `now` to its timestamp.
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(mut entry) = self.heap.pop() {
            if let Some(pos) = self.cancelled.iter().position(|c| c.0 == entry.seq) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            if entry.cancelled {
                continue;
            }
            let payload = entry.payload.take().expect("live entry has payload");
            crate::sanitize::check_event_order(self.last_popped_at, entry.at);
            self.last_popped_at = entry.at;
            // If the clock was advanced past this event (a driver that
            // models busy periods with `advance_to`), the event fires
            // late, at the current clock — time never runs backwards.
            let next_now = self.now.max(entry.at);
            crate::sanitize::check_time_monotonic(self.now, next_now);
            self.now = next_now;
            self.live -= 1;
            return Some((self.now, payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Skipping cancelled entries without popping requires a scan of the
        // heap top region; simplest correct approach is to iterate — peek
        // is only used for run-loop bounds checks, not hot paths.
        self.heap
            .iter()
            .filter(|e| !self.cancelled.iter().any(|c| c.0 == e.seq))
            .map(|e| e.at)
            .min()
    }

    /// Advance the clock with no event — used by drivers that model
    /// occupancy (e.g. a radio busy period) outside the queue. Pending
    /// events whose timestamps fall inside the skipped span fire *late*,
    /// at the advanced clock, when next popped.
    pub fn advance_to(&mut self, to: SimTime) {
        crate::sanitize::check_time_monotonic(self.now, to);
        self.now = self.now.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_micros(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(12345)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn len_is_exact_under_mixed_ops() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[3]);
        q.cancel(ids[7]);
        assert_eq!(q.len(), 8);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert!(q.is_empty());
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    #[should_panic(expected = "sim-sanitizer: clock moved backwards")]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn advancing_clock_backwards_is_a_violation() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(3));
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    fn pop_order_recheck_passes_on_normal_runs() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        q.advance_to(SimTime::from_micros(50)); // event at t=10 fires late
        q.schedule(SimTime::from_micros(60), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(50), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(60), 2));
    }
}

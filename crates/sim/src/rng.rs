//! Deterministic pseudo-random number generation.
//!
//! The simulator carries its own generator — xoshiro256\*\* seeded through
//! splitmix64 — rather than pulling in `rand`: bit-for-bit reproducibility
//! of a run from its seed is a hard requirement (replay-based debugging,
//! CI-stable experiment outputs) and must not depend on a third-party
//! crate's version-to-version stream stability.
//!
//! The generator is never global: every simulation world owns its `Rng`,
//! and sub-components that need independent streams `fork()` one off.

/// xoshiro256\*\* by Blackman & Vigna — 256-bit state, period 2^256 − 1,
/// passes BigCrush. Plenty for a network simulator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive the seed of an independent sub-stream from a master seed and a
/// stream index, via two splitmix64 steps (one per input word). This is
/// how fleet-scale runs give every network its own decorrelated,
/// reproducible RNG: the derived seed depends only on `(master, index)`,
/// never on scheduling order or thread count.
pub fn derive_stream_seed(master: u64, index: u64) -> u64 {
    let mut s = master;
    let a = splitmix64(&mut s);
    s ^= index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    a ^ splitmix64(&mut s)
}

impl Rng {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        // splitmix64 expansion guarantees a non-zero xoshiro state even
        // for seed = 0.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent generator (distinct, decorrelated stream).
    /// Used so that e.g. the traffic model and the channel-error model
    /// draw from different streams and adding draws to one does not
    /// perturb the other.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA5A5_5A5A_D00D_F00D)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method for unbiased output. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire 2018: unbiased bounded generation without division in
        // the common path.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` of `true` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (> 0).
    /// Used for Poisson inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF. 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller (one value per call; we do not
    /// cache the second to keep the stream position obvious).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal shadowing term in dB is just `normal(0, sigma)`; this
    /// helper exists for call-site readability in propagation models.
    pub fn shadowing_db(&mut self, sigma_db: f64) -> f64 {
        self.normal(0.0, sigma_db)
    }

    /// Poisson-distributed count with the given rate `lambda`.
    /// Knuth's method for small lambda, normal approximation above 30.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0);
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let v = self.normal(lambda, lambda.sqrt()).round();
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Zipf-like rank selection over `n` items with exponent `s`
    /// (simple inverse-CDF over precomputable weights is overkill here;
    /// rejection-free cumulative scan, fine for n ≤ a few thousand).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
        }
        let mut target = self.f64() * total;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`. Non-positive weights are treated as zero. If every
    /// weight is zero, picks uniformly — this mirrors TurboCA's
    /// load-weighted AP ordering where idle APs must still be schedulable.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty());
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.below(weights.len() as u64) as usize;
        }
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w.max(0.0);
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        // State must not be all zeros (xoshiro fixed point).
        assert!(r.s.iter().any(|&x| x != 0));
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                x => assert!((5..=8).contains(&x)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::new(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut r = Rng::new(17);
        for &lambda in &[0.5, 4.0, 80.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn chance_rate_is_close() {
        let mut r = Rng::new(19);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn weighted_index_prefers_heavy_items() {
        let mut r = Rng::new(29);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn weighted_index_all_zero_is_uniform() {
        let mut r = Rng::new(31);
        let w = [0.0, 0.0, 0.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500, "counts = {counts:?}");
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = Rng::new(37);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[r.zipf(5, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "counts = {counts:?}");
    }

    #[test]
    fn derived_stream_seeds_are_stable_and_distinct() {
        // Stable: pure function of (master, index).
        assert_eq!(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
        // Distinct across indices and masters, and the derived streams
        // are decorrelated from each other.
        let mut seen = std::collections::BTreeSet::new();
        for master in [0u64, 1, 42, u64::MAX] {
            for idx in 0..1000 {
                assert!(seen.insert(derive_stream_seed(master, idx)));
            }
        }
        let mut a = Rng::new(derive_stream_seed(5, 0));
        let mut b = Rng::new(derive_stream_seed(5, 1));
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut a = Rng::new(99);
        let mut b = a.fork();
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}

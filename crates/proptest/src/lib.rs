//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in sandboxed environments with no crates.io
//! access, so the property tests run against this shim instead of the
//! real runner. It keeps the subset of the API the tests use —
//! [`proptest!`], [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`],
//! `any::<T>()`, numeric-range strategies and [`collection::vec`] — with
//! deterministic case generation (seeded per test from the test's path,
//! so failures reproduce run-to-run) and **no shrinking**: a failing case
//! reports the case index and message, not a minimized input.
//!
//! Semantics preserved from real proptest:
//! * every generated value satisfies its strategy's bounds;
//! * `prop_assert*` failures abort the test with the formatted message;
//! * the number of cases is configurable via
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is needed here).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of `proptest::prelude::any`, re-exported at the crate root as
/// well since some call sites use `proptest::arbitrary::any`.
pub mod arbitrary {
    pub use crate::strategy::any;
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`: fail the
/// current case (returning from the enclosing generated closure) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {} \
                             (offline shim: no shrinking)",
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

//! Deterministic case RNG, runner configuration and the case-failure
//! error type.

use std::fmt;

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-case RNG: splitmix64 seeded from an FNV-1a hash of the test path
/// plus the case index. Deterministic across runs and platforms, and
/// decorrelated between tests and between cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = TestRng::for_case("mod::test_a", 0);
        let mut b = TestRng::for_case("mod::test_b", 0);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::for_case("mod::unit", 3);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Value-generation strategies: numeric ranges and `any::<T>()`.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates one value per call. Unlike real proptest there is no value
/// tree: strategies produce final values directly (no shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start
                        .wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*
    };
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Pass-through so `proptest!` arguments can reuse a prebuilt strategy
/// behind a reference.
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (*self).generate(rng)
    }
}

/// `Just`-style constant strategy, occasionally handy in local tests.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("strategy::bounds", 0);
        for _ in 0..1_000 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
            let z = (3i32..=5).generate(&mut rng);
            assert!((3..=5).contains(&z));
        }
    }

    #[test]
    fn any_is_deterministic_per_case() {
        let mut a = TestRng::for_case("strategy::det", 7);
        let mut b = TestRng::for_case("strategy::det", 7);
        for _ in 0..100 {
            assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        }
    }
}
